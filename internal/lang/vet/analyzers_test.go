package vet

import (
	"strings"
	"testing"

	"facile/internal/lang/source"
)

// runSrc vets one synthetic program as a single unit.
func runSrc(t *testing.T, src string, opt Options) *Result {
	t.Helper()
	fs := source.NewSet()
	fs.Add("test.fac", src)
	return RunSet(fs, opt)
}

// byCode filters a result's diagnostics.
func byCode(r *Result, code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diags {
		if d.Code == code {
			out = append(out, d)
		}
	}
	return out
}

func wantCode(t *testing.T, r *Result, code string, n int) []Diagnostic {
	t.Helper()
	ds := byCode(r, code)
	if len(ds) != n {
		t.Errorf("%s: got %d finding(s), want %d\nall: %v", code, len(ds), n, r.Diags)
	}
	return ds
}

func TestPipelineErrors(t *testing.T) {
	r := runSrc(t, "fun main( {", Options{})
	ds := wantCode(t, r, "FV0001", 1)
	if len(ds) == 1 && (ds[0].Severity != SevError || ds[0].Pos.Line == 0) {
		t.Errorf("FV0001 = %+v, want error severity with a position", ds[0])
	}
	if !r.HasErrors() {
		t.Error("parse failure does not count as errors")
	}

	r = runSrc(t, `
fun main(x) {
    nope(x);
    set_args(x);
}
`, Options{})
	ds = wantCode(t, r, "FV0002", 1)
	if len(ds) == 1 && ds[0].Pos.Line != 3 {
		t.Errorf("FV0002 at %s, want line 3", ds[0].Pos)
	}
}

func TestBindtimePointlessPin(t *testing.T) {
	r := runSrc(t, `
fun main(x) {
    val a = (x + 1)?pin();
    set_args(a);
}
`, Options{})
	ds := wantCode(t, r, "FV0102", 1)
	if len(ds) == 1 && ds[0].Fix == "" {
		t.Error("FV0102 carries no suggested fix")
	}
}

func TestBindtimeUnpinnedExtern(t *testing.T) {
	r := runSrc(t, `
extern e(1);
val out = 0;
fun main(x) {
    out = e(x);
    set_args(x);
}
`, Options{})
	ds := wantCode(t, r, "FV0103", 1)
	if len(ds) == 1 && !strings.Contains(ds[0].Message, `"e"`) {
		t.Errorf("FV0103 message %q does not name the extern", ds[0].Message)
	}

	// Pinning the result silences it.
	r = runSrc(t, `
extern e(1);
val out = 0;
fun main(x) {
    out = e(x)?pin();
    set_args(x);
}
`, Options{})
	wantCode(t, r, "FV0103", 0)
}

func TestBindtimeExplainChains(t *testing.T) {
	r := runSrc(t, `
val A = array(4){0};
val g = 0;
fun main(x) {
    val v = A[x] + 1;
    g = v;
    set_args(x);
}
`, Options{Explain: true})
	found := false
	for _, d := range byCode(r, "FV0101") {
		if strings.Contains(d.Message, `local "v" is dynamic`) &&
			strings.Contains(d.Message, `array "A"`) {
			found = true
		}
	}
	if !found {
		t.Errorf("explain mode did not chain local v to the array read; got %v", byCode(r, "FV0101"))
	}
	// Explain is opt-in: without the flag no FV0101 appears.
	r = runSrc(t, `
val A = array(4){0};
val g = 0;
fun main(x) {
    g = A[x];
    set_args(x);
}
`, Options{})
	wantCode(t, r, "FV0101", 0)
}

func TestWritethroughElidable(t *testing.T) {
	// g is stored rt-static and never read by dynamic code: FV0201 counts
	// the write-through, FV0202 calls it elidable under LiftLiveOnly.
	r := runSrc(t, `
val g = 0;
extern e(1);
fun main(x) {
    g = x * 2;
    e(x);
    set_args((x + 1) % 4);
}
`, Options{})
	wantCode(t, r, "FV0201", 1)
	ds := wantCode(t, r, "FV0202", 1)
	if len(ds) == 1 && !strings.Contains(ds[0].Fix, "LiftLiveOnly") {
		t.Errorf("FV0202 fix %q does not mention LiftLiveOnly", ds[0].Fix)
	}
}

func TestWritethroughNotElidableWhenDynRead(t *testing.T) {
	// h is read at step entry while still dynamic (globals are dynamic
	// until a static store), so its write-through must survive even under
	// LiftLiveOnly: FV0201 yes, FV0202 no.
	r := runSrc(t, `
val h = 0;
val A = array(4){0};
fun main(x) {
    A[x] = h;
    h = x * 2;
    set_args(x);
}
`, Options{})
	wantCode(t, r, "FV0201", 1)
	wantCode(t, r, "FV0202", 0)
}

func TestMemokeyDynamicAndPinDerivedKeys(t *testing.T) {
	r := runSrc(t, `
extern e(0);
fun main(x) {
    set_args(e());
}
`, Options{})
	wantCode(t, r, "FV0301", 1)

	r = runSrc(t, `
extern e(0);
fun main(x) {
    val p = e()?pin();
    set_args(x + p);
}
`, Options{})
	ds := wantCode(t, r, "FV0302", 1)
	if len(ds) == 1 && !strings.Contains(ds[0].Message, "?pin") {
		t.Errorf("FV0302 message %q does not point at the pin site", ds[0].Message)
	}
	wantCode(t, r, "FV0301", 0)
}

func TestMemokeyQueueWidths(t *testing.T) {
	r := runSrc(t, `
fun main(q: queue(64, 2), x) {
    set_args(q, x);
}
`, Options{})
	ds := wantCode(t, r, "FV0303", 1)
	if len(ds) == 1 && ds[0].Severity != SevWarning {
		t.Errorf("FV0303 for 128 words = %v, want warning", ds[0].Severity)
	}

	r = runSrc(t, `
fun main(q: queue(4, 1), x) {
    set_args(q, x);
}
`, Options{})
	ds = wantCode(t, r, "FV0303", 1)
	if len(ds) == 1 && ds[0].Severity != SevInfo {
		t.Errorf("FV0303 for 4 words = %v, want info", ds[0].Severity)
	}
	sum := wantCode(t, r, "FV0304", 1)
	if len(sum) == 1 && !strings.Contains(sum[0].Message, "q[4x1]") {
		t.Errorf("FV0304 summary %q does not describe the queue", sum[0].Message)
	}
}

const dispatchHeader = `
token t[8]
  fields a 0:3, b 4:7;
`

func TestEncodingOverlapAndShadow(t *testing.T) {
	// p1 and p2 overlap without subsumption (a word with a=1,b=2 matches
	// both); p3 repeats p1 exactly, so p3 is shadowed.
	r := runSrc(t, dispatchHeader+`
pat p1 = a == 1;
pat p2 = b == 2;
pat p3 = a == 1;
sem p1 { }
sem p2 { }
sem p3 { }
val PC : stream;
fun main(x) {
    PC?exec();
    set_args(x);
}
`, Options{})
	if len(byCode(r, "FV0401")) == 0 {
		t.Errorf("no FV0401 overlap finding; got %v", r.Diags)
	}
	ds := byCode(r, "FV0402")
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "p3") {
		t.Errorf("FV0402 = %v, want exactly one naming p3", ds)
	}
}

func TestEncodingCoverageAndTree(t *testing.T) {
	// Four single-constant cases on one 4-bit field: eligible for the
	// binary decision tree, with 12 of 16 values undecoded.
	r := runSrc(t, dispatchHeader+`
pat p1 = a == 1;
pat p2 = a == 2;
pat p3 = a == 3;
pat p4 = a == 4;
sem p1 { }
sem p2 { }
sem p3 { }
sem p4 { }
val PC : stream;
fun main(x) {
    PC?exec();
    set_args(x);
}
`, Options{})
	cov := wantCode(t, r, "FV0403", 1)
	if len(cov) == 1 && !strings.Contains(cov[0].Message, "4 of 16") {
		t.Errorf("FV0403 message %q, want coverage of 4 of 16 values", cov[0].Message)
	}
	tree := wantCode(t, r, "FV0404", 1)
	if len(tree) == 1 && !strings.Contains(tree[0].Message, "decision tree") {
		t.Errorf("FV0404 message %q, want a decision-tree report", tree[0].Message)
	}
}

func TestEncodingBadConstants(t *testing.T) {
	// 99 does not fit the 4-bit field a (FV0405), making the pattern
	// unsatisfiable (FV0406). The contradiction a==1 && a==2 is also
	// unsatisfiable.
	r := runSrc(t, dispatchHeader+`
pat wide = a == 99;
pat never = a == 1 && a == 2;
sem wide { }
sem never { }
val PC : stream;
fun main(x) {
    PC?exec();
    set_args(x);
}
`, Options{})
	wantCode(t, r, "FV0405", 1)
	wantCode(t, r, "FV0406", 2)
}

func TestEncodingPatSwitchSite(t *testing.T) {
	// Pattern switches are dispatch sites too: the shadowed case is
	// flagged even with no ?exec in the program.
	r := runSrc(t, dispatchHeader+`
pat p1 = a == 1;
pat p2 = a == 1;
val PC : stream;
val g = 0;
fun main(x) {
    switch (PC) {
      pat p1: { g = 1; }
      pat p2: { g = 2; }
    }
    set_args(x);
}
`, Options{})
	if len(byCode(r, "FV0402")) == 0 {
		t.Errorf("no FV0402 for the shadowed pat-switch case; got %v", r.Diags)
	}
}

func TestUnusedDeclarations(t *testing.T) {
	r := runSrc(t, `
token t[8]
  fields a 0:3, b 4:7;
pat pa = a == 1;
pat pb = a == 2;
sem pa { }
extern never(0);
val gunused = 0;
fun helper(x) { return x; }
fun main(k) {
    val dead = k + 1;
    set_args(k);
}
`, Options{})
	for code, want := range map[string]string{
		"FV0501": `"b"`,
		"FV0502": `"pb"`,
		"FV0503": `"never"`,
		"FV0504": `"helper"`,
		"FV0505": `"gunused"`,
		"FV0507": `"dead"`,
	} {
		ds := wantCode(t, r, code, 1)
		if len(ds) == 1 && !strings.Contains(ds[0].Message, want) {
			t.Errorf("%s message %q does not name %s", code, ds[0].Message, want)
		}
	}
}

func TestUnusedWriteOnlyGlobal(t *testing.T) {
	r := runSrc(t, `
val wo = 0;
fun main(k) {
    wo = k;
    set_args(k);
}
`, Options{})
	ds := wantCode(t, r, "FV0506", 1)
	if len(ds) == 1 && ds[0].Severity != SevInfo {
		t.Errorf("FV0506 severity %v, want info (the host may read it)", ds[0].Severity)
	}
	wantCode(t, r, "FV0505", 0)
}

func TestStaticctxQueueViolations(t *testing.T) {
	// Both violation sites are reported, not just the first the compiler
	// errors on, and the rest of the program is still analyzed.
	r := runSrc(t, `
extern e(0);
val out = 0;
fun main(q: queue(4, 1), x) {
    q?push(e());
    val v = q?get(e(), 0);
    out = v;
    set_args(q, x);
}
`, Options{})
	ds := wantCode(t, r, "FV0601", 2)
	for _, d := range ds {
		if d.Severity != SevError {
			t.Errorf("FV0601 severity %v, want error", d.Severity)
		}
	}
	if !r.HasErrors() {
		t.Error("queue violations do not surface through HasErrors")
	}
	// The independent analyzers still ran on the violating program.
	wantCode(t, r, "FV0304", 1)
}

func TestStaticctxUnreachable(t *testing.T) {
	r := runSrc(t, `
val g = 0;
fun f(x) {
    return x;
    g = 7;
}
fun main(y) {
    set_args(f(y));
}
`, Options{})
	ds := wantCode(t, r, "FV0602", 1)
	if len(ds) == 1 && ds[0].Pos.Line != 5 {
		t.Errorf("FV0602 at %s, want the statement after return (line 5)", ds[0].Pos)
	}
}

func TestOptionsEnableDisableSeverity(t *testing.T) {
	src := `
val g = 0;
extern e(1);
fun main(x) {
    g = x * 2;
    e(x);
    set_args((x + 1) % 4);
}
`
	// Enable only the writethrough analyzer.
	r := runSrc(t, src, Options{Enable: []string{"writethrough"}})
	for _, d := range r.Diags {
		if !strings.HasPrefix(d.Code, "FV02") {
			t.Errorf("enable=writethrough leaked %s", d.Code)
		}
	}
	if len(r.Diags) == 0 {
		t.Error("enable=writethrough produced nothing")
	}
	// Disable one code by prefix match.
	r = runSrc(t, src, Options{Disable: []string{"FV0202"}})
	wantCode(t, r, "FV0202", 0)
	wantCode(t, r, "FV0201", 1)
	// Severity floor drops infos.
	r = runSrc(t, src, Options{MinSeverity: SevWarning})
	for _, d := range r.Diags {
		if d.Severity < SevWarning {
			t.Errorf("MinSeverity=warning leaked %s (%v)", d.Code, d.Severity)
		}
	}
}

func TestPositionsResolveAcrossFiles(t *testing.T) {
	fs := source.NewSet()
	fs.Add("lib.fac", "val g = 0;\n")
	fs.Add("step.fac", `
fun main(x) {
    val a = (x + 1)?pin();
    set_args(a);
}
`)
	r := RunSet(fs, Options{})
	ds := byCode(r, "FV0102")
	if len(ds) != 1 {
		t.Fatalf("FV0102 findings = %v, want 1", ds)
	}
	if ds[0].Pos.File != "step.fac" || ds[0].Pos.Line != 3 {
		t.Errorf("FV0102 at %s, want step.fac:3", ds[0].Pos)
	}
}
