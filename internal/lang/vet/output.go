package vet

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteText renders findings in the conventional compiler format:
//
//	file:line:col: severity FV0101: message
//	        fix: suggested fix
//
// Unit-specific findings carry a "[unit …]" suffix.
func WriteText(w io.Writer, r *Result) error {
	for _, d := range r.Diags {
		unit := ""
		if d.Unit != "" {
			unit = fmt.Sprintf(" [unit %s]", d.Unit)
		}
		if _, err := fmt.Fprintf(w, "%s: %s %s: %s%s\n", d.Pos, d.Severity, d.Code, d.Message, unit); err != nil {
			return err
		}
		if d.Fix != "" {
			if _, err := fmt.Fprintf(w, "\tfix: %s\n", d.Fix); err != nil {
				return err
			}
		}
	}
	return nil
}

// jsonReport is the stable machine-readable envelope.
type jsonReport struct {
	Version     string       `json:"version"`
	Units       [][]string   `json:"units"`
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// WriteJSON renders the result as a single stable JSON document.
func WriteJSON(w io.Writer, r *Result) error {
	diags := r.Diags
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonReport{Version: "1", Units: r.Units, Diagnostics: diags})
}

// SARIF 2.1.0 (the static-analysis interchange format CI systems ingest).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

func sarifLevel(s Severity) string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "note"
}

// WriteSARIF renders the result as a SARIF 2.1.0 log with one run. Rule
// metadata comes from the analyzer registry for every code that appears.
func WriteSARIF(w io.Writer, r *Result) error {
	docs := map[string]string{}
	for _, c := range PipelineCodes() {
		docs[c.Code] = c.Doc
	}
	for _, a := range All() {
		for _, c := range a.Codes {
			docs[c.Code] = c.Doc
		}
	}
	seen := map[string]bool{}
	var rules []sarifRule
	results := []sarifResult{}
	for _, d := range r.Diags {
		if !seen[d.Code] {
			seen[d.Code] = true
			rules = append(rules, sarifRule{ID: d.Code, ShortDescription: sarifMessage{Text: docs[d.Code]}})
		}
		msg := d.Message
		if d.Fix != "" {
			msg += " (fix: " + d.Fix + ")"
		}
		if d.Unit != "" {
			msg += " [unit " + d.Unit + "]"
		}
		line, col := d.Pos.Line, d.Pos.Col
		if line <= 0 {
			line, col = 1, 1
		}
		results = append(results, sarifResult{
			RuleID:  d.Code,
			Level:   sarifLevel(d.Severity),
			Message: sarifMessage{Text: msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.Pos.File},
				Region:           sarifRegion{StartLine: line, StartColumn: col},
			}}},
		})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if rules == nil {
		rules = []sarifRule{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "fvet", Rules: rules}},
			Results: results,
		}},
	})
}
