package vet

import (
	"strings"
	"testing"
)

// headForkSrc puts a dynamic branch in the first dynamic block of the
// step: the PR-8 fork-at-run-head corner. A replay miss at this test
// degrades the whole step before any fused work runs.
const headForkSrc = `
extern e(1);
val out = 0;
fun main(x) {
    if (e(x) > 2) {
        out = out + 1;
    }
    set_args(x);
}
`

func TestFusionHeadForkBarrier(t *testing.T) {
	r := runSrc(t, headForkSrc, Options{})
	ds := byCode(r, "FV0701")
	if len(ds) == 0 {
		t.Fatalf("no FV0701 for a head fork; all: %v", r.Diags)
	}
	var head *Diagnostic
	for i := range ds {
		if strings.Contains(ds[i].Message, "at the head of a replay step") {
			head = &ds[i]
			break
		}
	}
	if head == nil {
		t.Fatalf("no FV0701 carries the head-of-step clause; got %v", ds)
	}
	if !strings.Contains(head.Message, "dynamic branch") {
		t.Errorf("head barrier does not name the fork kind: %q", head.Message)
	}
	if !strings.Contains(head.Message, "tested value is dynamic") {
		t.Errorf("head barrier carries no cause chain: %q", head.Message)
	}
	if !strings.Contains(head.Fix, "?pin") {
		t.Errorf("head barrier fix does not suggest ?pin: %q", head.Fix)
	}
	if head.Pos.Line == 0 {
		t.Error("head barrier has no source position")
	}
}

// zeroCoverageSrc keeps every dynamic op inside the fork block itself
// (the branch body is run-time static), so nothing fuses.
const zeroCoverageSrc = `
extern e(1);
val out = 0;
fun main(x) {
    if (e(x) > 2) {
        out = 1;
    }
    set_args(x);
}
`

func TestFusionCoverageWarning(t *testing.T) {
	r := runSrc(t, zeroCoverageSrc, Options{})
	ds := wantCode(t, r, "FV0702", 1)
	if len(ds) == 1 {
		if ds[0].Severity != SevWarning {
			t.Errorf("FV0702 severity %v, want warning", ds[0].Severity)
		}
		if !strings.Contains(ds[0].Message, "below") {
			t.Errorf("FV0702 message does not state the threshold: %q", ds[0].Message)
		}
	}

	// Explain mode adds the per-unit info verdict on top.
	r = runSrc(t, zeroCoverageSrc, Options{Explain: true})
	ds = wantCode(t, r, "FV0702", 2)
	infos := 0
	for _, d := range ds {
		if d.Severity == SevInfo && strings.Contains(d.Message, "predicted fusion coverage") {
			infos++
		}
	}
	if infos != 1 {
		t.Errorf("explain mode: got %d coverage info(s), want 1; all: %v", infos, ds)
	}
}

func TestFusionShortHotRun(t *testing.T) {
	// The loop body's pure dynamic work is pinched between dynamic
	// branches every iteration: hot, fusable, but its maximal run can
	// never reach the minimum fuse length.
	r := runSrc(t, `
extern e(1);
val out = 0;
fun main(x) {
    val i = 0;
    while (i < 8) {
        if (e(i) > 2) {
            out = out + 1;
        }
        i = i + 1;
    }
    set_args(x);
}
`, Options{})
	ds := byCode(r, "FV0703")
	if len(ds) == 0 {
		t.Fatalf("no FV0703 for a hot short run; all: %v", r.Diags)
	}
	for _, d := range ds {
		if !strings.Contains(d.Message, "single-action dispatch") {
			t.Errorf("FV0703 message does not state the consequence: %q", d.Message)
		}
	}
	// The loop's dynamic branch is also a barrier (hot fork).
	if len(byCode(r, "FV0701")) == 0 {
		t.Errorf("no FV0701 for the in-loop fork; all: %v", r.Diags)
	}
}

func TestFusionSummaryExported(t *testing.T) {
	r := runSrc(t, headForkSrc, Options{})
	if len(r.Fusion) != 1 {
		t.Fatalf("got %d fusion summaries, want 1", len(r.Fusion))
	}
	fs := r.Fusion[0]
	if fs.DynOps == 0 || fs.DynBlocks == 0 {
		t.Errorf("summary reports no dynamic work: %+v", fs)
	}
	if fs.Barriers == 0 {
		t.Errorf("summary reports no barriers for a forking program: %+v", fs)
	}
	if fs.FusableOps > fs.DynOps {
		t.Errorf("fusable ops %d exceed dynamic ops %d", fs.FusableOps, fs.DynOps)
	}
	if c := fs.Coverage; c < 0 || c > 1 {
		t.Errorf("coverage %v outside [0,1]", c)
	}
}

func TestFusionCoverageThresholdOption(t *testing.T) {
	// A tiny explicit threshold silences the warning even at 0% coverage
	// only if coverage clears it — 0% clears nothing, so instead check a
	// generous threshold fires and that the option is honored both ways
	// on a program with partial coverage.
	r := runSrc(t, headForkSrc, Options{FusionCoverageMin: 0.99})
	if len(byCode(r, "FV0702")) != 1 {
		t.Errorf("FV0702 missing under a 99%% threshold")
	}
}
