package vet

import (
	"bytes"
	"testing"
)

func TestBaselineRoundTripAndCompare(t *testing.T) {
	r := runSrc(t, `
val g = 0;
extern e(1);
fun main(x) {
    g = x * 2;
    e(x);
    set_args((x + 1) % 4);
}
`, Options{})
	if len(r.Diags) < 2 {
		t.Fatalf("test program produced %d finding(s), want at least 2", len(r.Diags))
	}
	b := NewBaseline(r)

	var buf bytes.Buffer
	if err := b.WriteBaseline(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Findings) != len(b.Findings) {
		t.Fatalf("round trip lost findings: %d -> %d", len(b.Findings), len(loaded.Findings))
	}

	// A result identical to its own baseline is clean both ways.
	fresh, fixed := loaded.Compare(r)
	if len(fresh) != 0 || len(fixed) != 0 {
		t.Errorf("self-compare: fresh=%v fixed=%v, want none", fresh, fixed)
	}

	// Removing an entry makes the corresponding finding fresh (gate fails).
	short := &Baseline{Version: 1, Findings: loaded.Findings[1:]}
	fresh, _ = short.Compare(r)
	if len(fresh) != 1 || BaselineKey(fresh[0]) != loaded.Findings[0] {
		t.Errorf("shrunken baseline: fresh=%v, want exactly the removed finding", fresh)
	}

	// An entry no longer produced is reported as fixed (shrink allowed).
	extra := &Baseline{Version: 1, Findings: append([]string{"FV9999|gone.fac:1:1||stale"}, loaded.Findings...)}
	fresh, fixed = extra.Compare(r)
	if len(fresh) != 0 || len(fixed) != 1 || fixed[0] != "FV9999|gone.fac:1:1||stale" {
		t.Errorf("stale baseline: fresh=%v fixed=%v, want only the stale key fixed", fresh, fixed)
	}
}
