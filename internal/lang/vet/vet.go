// Package vet is a static-analysis suite for Facile programs.
//
// It reuses the whole compiler pipeline (lexer → parser → types → lower →
// binding-time analysis) and surfaces the compiler's internal knowledge —
// binding-time provenance, write-through costs, memoization-key shape,
// encoding overlap — as stable, positioned diagnostics with text, JSON,
// and SARIF renderings. The analyzer registry follows the spirit of
// go/analysis: each analyzer declares its codes and runs over a Pass that
// exposes every pipeline artifact.
package vet

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"facile/internal/lang/ast"
	"facile/internal/lang/compile"
	"facile/internal/lang/ir"
	"facile/internal/lang/lexer"
	"facile/internal/lang/parser"
	"facile/internal/lang/source"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// Severity ranks a diagnostic.
type Severity int

// Severities, least to most severe.
const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON parses a severity name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = SevError
	case `"warning"`:
		*s = SevWarning
	case `"info"`:
		*s = SevInfo
	default:
		return fmt.Errorf("unknown severity %s", b)
	}
	return nil
}

// Diagnostic is one finding: a stable code, a severity, a resolved source
// position, and a message (plus a suggested fix when one is cheap to
// state). Unit names the main file of the compilation unit the finding
// came from, and is set only when several units were analyzed and the
// finding is specific to one of them.
type Diagnostic struct {
	Code     string          `json:"code"`
	Severity Severity        `json:"severity"`
	Analyzer string          `json:"analyzer"`
	Pos      source.Position `json:"pos"`
	Message  string          `json:"message"`
	Fix      string          `json:"fix,omitempty"`
	Unit     string          `json:"unit,omitempty"`
}

// CodeDoc documents one diagnostic code an analyzer can emit.
type CodeDoc struct {
	Code     string
	Severity Severity
	Doc      string
}

// Analyzer is one registered analysis.
type Analyzer struct {
	Name  string
	Doc   string
	Codes []CodeDoc
	Run   func(*Pass)
}

// Pass is everything one compilation unit exposes to analyzers. Fields
// are nil when the pipeline failed before producing them; analyzers must
// check for what they need.
type Pass struct {
	FS      *source.Set
	AST     *ast.Program   // parsed unit
	Checked *types.Checked // nil if type checking failed

	// IR/Facts: the default compile (optimized, no LiftLiveOnly) — what
	// faciled and the simulators actually run. Present even when compile
	// failed with a queue violation (the program is still fully analyzed).
	IR    *ir.Program
	Facts *compile.Facts

	// RawIR/RawFacts: an unoptimized compile, for provenance chains and
	// unreachable-code analysis (positions survive, constant branches are
	// not folded away).
	RawIR    *ir.Program
	RawFacts *compile.Facts

	CompileErr error
	Opt        Options

	report func(Diagnostic)
}

// Position resolves a blob position against the unit's file set.
func (p *Pass) Position(pos token.Pos) source.Position { return p.FS.Resolve(pos) }

// Report emits a diagnostic, honoring the enable/disable and severity
// filters.
func (p *Pass) Report(d Diagnostic) {
	if !p.Opt.codeEnabled(d.Code, d.Analyzer) || d.Severity < p.Opt.MinSeverity {
		return
	}
	p.report(d)
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(analyzer, code string, sev Severity, pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Code: code, Severity: sev, Analyzer: analyzer,
		Pos: p.Position(pos), Message: fmt.Sprintf(format, args...)})
}

// ReportFix is Reportf with a suggested fix attached.
func (p *Pass) ReportFix(analyzer, code string, sev Severity, pos token.Pos, fix, format string, args ...any) {
	p.Report(Diagnostic{Code: code, Severity: sev, Analyzer: analyzer,
		Pos: p.Position(pos), Message: fmt.Sprintf(format, args...), Fix: fix})
}

// Options configure a vet run.
type Options struct {
	// Enable restricts the run to codes/analyzers matching these tokens
	// (exact analyzer name, exact code, or code prefix like "FV01").
	// Empty means everything.
	Enable []string
	// Disable suppresses matching codes/analyzers; it wins over Enable.
	Disable []string
	// MinSeverity drops findings below this severity.
	MinSeverity Severity
	// Explain turns on the binding-time provenance report (FV0101): one
	// info per dynamic named binding with its why-dynamic chain — and the
	// per-unit fusion coverage report (FV0702 info).
	Explain bool
	// FusionCoverageMin is the FV0702 warning threshold (fraction of
	// dynamic ops in fusable blocks). Zero means DefaultFusionCoverageMin.
	FusionCoverageMin float64
}

func matchToken(tok, code, analyzer string) bool {
	if tok == analyzer {
		return true
	}
	return strings.HasPrefix(code, tok) && strings.HasPrefix(tok, "FV")
}

func (o *Options) codeEnabled(code, analyzer string) bool {
	for _, t := range o.Disable {
		if matchToken(t, code, analyzer) {
			return false
		}
	}
	if len(o.Enable) == 0 {
		return true
	}
	for _, t := range o.Enable {
		if matchToken(t, code, analyzer) {
			return true
		}
	}
	return false
}

// FusionSummary condenses one unit's proven replay plan: the static
// fusion facts the compiled-replay engine consumes at machine-build time,
// exported so preflight consumers and job records can report predicted
// coverage without recompiling.
type FusionSummary struct {
	Unit           string  `json:"unit,omitempty"`
	DynBlocks      int     `json:"dyn_blocks"`     // blocks recorded as actions
	FusableBlocks  int     `json:"fusable_blocks"` // pure-flow blocks with a proven layout
	DynOps         int     `json:"dyn_ops"`
	FusableOps     int     `json:"fusable_ops"`
	Coverage       float64 `json:"coverage"` // FusableOps/DynOps (0..1)
	MaxRun         int     `json:"max_run"`  // longest provable pure-flow run
	Barriers       int     `json:"barriers"` // fork (dynamic-result) blocks
	LayoutUnproven int     `json:"layout_unproven"`
}

// Result is the outcome of a vet run.
type Result struct {
	// Units lists the file names of each compilation unit analyzed.
	Units [][]string `json:"units"`
	// Diags is sorted by position, then code, then message.
	Diags []Diagnostic `json:"diagnostics"`
	// Fusion holds each successfully compiled unit's static fusion facts,
	// in unit order.
	Fusion []FusionSummary `json:"fusion,omitempty"`
}

// Count returns the number of findings at exactly severity sev.
func (r *Result) Count(sev Severity) int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any error-severity finding exists.
func (r *Result) HasErrors() bool { return r.Count(SevError) > 0 }

// All returns the analyzer registry in its stable order.
func All() []*Analyzer {
	return []*Analyzer{
		bindtimeAnalyzer,
		writethroughAnalyzer,
		memokeyAnalyzer,
		encodingAnalyzer,
		unusedAnalyzer,
		staticctxAnalyzer,
		fusionAnalyzer,
	}
}

// PipelineCodes documents the diagnostics the driver itself emits when
// the compilation pipeline fails before any analyzer can run. They are
// part of the stable code space like analyzer codes (listed by -list,
// validated by the lintfv meta-check).
func PipelineCodes() []CodeDoc {
	return []CodeDoc{
		{"FV0001", SevError, "parse error: the unit could not be parsed"},
		{"FV0002", SevError, "type error: the unit failed type checking"},
		{"FV0003", SevError, "compile error: lowering or binding-time analysis failed"},
	}
}

// ErrorPosition extracts the source position and bare message from any
// compilation-pipeline error (lexer, parser, types, or compile). Drivers
// resolve the position through their source.Set to report multi-file
// file:line:col locations. A zero position (Line 0) means the error
// carries no location.
func ErrorPosition(err error) (token.Pos, string) { return splitErr(err) }

// splitErr extracts the position and bare message from a pipeline error.
func splitErr(err error) (token.Pos, string) {
	var le *lexer.Error
	var pe *parser.Error
	var te *types.Error
	var ce *compile.Error
	switch {
	case errors.As(err, &le):
		return le.Pos, le.Msg
	case errors.As(err, &pe):
		return pe.Pos, pe.Msg
	case errors.As(err, &te):
		return te.Pos, te.Msg
	case errors.As(err, &ce):
		return ce.Pos, ce.Msg
	}
	return token.Pos{}, err.Error()
}

// RunSet analyzes one compilation unit (an ordered file set forming one
// program).
func RunSet(fs *source.Set, opt Options) *Result {
	r := &Result{Units: [][]string{fs.Files()}}
	pass := &Pass{FS: fs, Opt: opt, report: func(d Diagnostic) { r.Diags = append(r.Diags, d) }}

	prog, err := parser.Parse(fs.Cat())
	if err != nil {
		pos, msg := splitErr(err)
		pass.Reportf("pipeline", "FV0001", SevError, pos, "parse error: %s", msg)
		sortDiags(r.Diags)
		return r
	}
	pass.AST = prog

	ck, err := types.Check(prog)
	if err != nil {
		pos, msg := splitErr(err)
		pass.Reportf("pipeline", "FV0002", SevError, pos, "type error: %s", msg)
	} else {
		pass.Checked = ck
		p0, f0, cerr := compile.CompileWithFacts(ck, compile.Options{})
		pass.CompileErr = cerr
		if cerr == nil || len(f0.QueueViolations) > 0 {
			// Queue violations are reported (with every site) by FV0601;
			// the program is still fully analyzed.
			pass.IR, pass.Facts = p0, f0
		} else {
			pos, msg := splitErr(cerr)
			pass.Reportf("pipeline", "FV0003", SevError, pos, "compile error: %s", msg)
		}
		p1, f1, rerr := compile.CompileWithFacts(ck, compile.Options{NoOptimize: true})
		if rerr == nil || len(f1.QueueViolations) > 0 {
			pass.RawIR, pass.RawFacts = p1, f1
		}
	}

	for _, a := range All() {
		a.Run(pass)
	}
	if pass.IR != nil {
		if fs := fusionSummary(pass.IR); fs != nil {
			r.Fusion = append(r.Fusion, *fs)
		}
	}
	sortDiags(r.Diags)
	return r
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		return a.Unit < b.Unit
	})
}

// RunFiles analyzes .fac files from disk. Files are partitioned into
// compilation units: every file declaring `fun main` anchors a unit made
// of itself plus all main-less (library) files, preserving command-line
// order — so `fvet isa.fac stepA.fac stepB.fac` analyzes isa+stepA and
// isa+stepB. With no main anywhere, all files form one unit. Findings
// repeated identically across units are merged; unit-specific findings
// are tagged with the unit's main file.
func RunFiles(paths []string, opt Options) (*Result, error) {
	srcs := make([]string, len(paths))
	isMain := make([]bool, len(paths))
	anyMain := false
	for i, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		srcs[i] = string(b)
		if prog, err := parser.Parse(srcs[i] + "\n"); err == nil && prog.Fun("main") != nil {
			isMain[i] = true
			anyMain = true
		}
	}

	var units [][]int // file indices per unit
	if !anyMain {
		all := make([]int, len(paths))
		for i := range paths {
			all[i] = i
		}
		units = [][]int{all}
	} else {
		for m := range paths {
			if !isMain[m] {
				continue
			}
			var u []int
			for i := range paths {
				if i == m || !isMain[i] {
					u = append(u, i)
				}
			}
			units = append(units, u)
		}
	}

	merged := &Result{}
	type key struct {
		code, msg string
		pos       source.Position
	}
	seen := map[key]int{} // -> index into merged.Diags
	for _, u := range units {
		fs := source.NewSet()
		unitName := ""
		for _, i := range u {
			fs.Add(paths[i], srcs[i])
			if isMain[i] {
				unitName = paths[i]
			}
		}
		res := RunSet(fs, opt)
		merged.Units = append(merged.Units, fs.Files())
		for _, f := range res.Fusion {
			f.Unit = unitName
			merged.Fusion = append(merged.Fusion, f)
		}
		for _, d := range res.Diags {
			if len(units) > 1 {
				d.Unit = unitName
			}
			k := key{d.Code, d.Message, d.Pos}
			if at, dup := seen[k]; dup {
				// The same finding in several units is universal, not
				// unit-specific.
				merged.Diags[at].Unit = ""
				continue
			}
			seen[k] = len(merged.Diags)
			merged.Diags = append(merged.Diags, d)
		}
	}
	sortDiags(merged.Diags)
	return merged, nil
}
