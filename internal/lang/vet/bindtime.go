package vet

import (
	"fmt"
	"sort"
	"strings"

	"facile/internal/lang/compile"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
)

// bindtimeAnalyzer explains and polices binding times. FV0101 is the
// explain-mode provenance report: for every named binding the BTA decided
// is dynamic, the shortest why-dynamic chain back to a root cause (array
// read, extern call, queue op, or dynamic global read), derived from the
// first-cause edges the §4.1 lattice fixpoint records. FV0102/FV0103 flag
// avoidable dynamism.
var bindtimeAnalyzer = &Analyzer{
	Name: "bindtime",
	Doc:  "binding-time provenance and avoidable-dynamism checks",
	Codes: []CodeDoc{
		{"FV0101", SevInfo, "why-dynamic provenance chain for a named binding (explain mode)"},
		{"FV0102", SevWarning, "?pin applied to a value that is already run-time static"},
		{"FV0103", SevWarning, "extern call with all run-time static arguments whose dynamic result is used unpinned"},
	},
	Run: runBindtime,
}

func runBindtime(p *Pass) {
	if p.IR != nil {
		pointlessPins(p)
		unpinnedExterns(p)
	}
	if p.Opt.Explain && p.RawIR != nil && p.RawFacts != nil {
		explainBindings(p)
		explainGlobals(p)
	}
}

// pointlessPins flags ?pin on rt-static operands: the pin has no effect
// (the value is already part of the memoization state) but still ends the
// basic block.
func pointlessPins(p *Pass) {
	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.Op == ir.Pin && inst.BT == ir.BTStatic {
				p.ReportFix("bindtime", "FV0102", SevWarning, inst.Pos,
					"remove the ?pin",
					"?pin of a value that is already run-time static has no effect")
			}
		}
	}
}

// unpinnedExterns flags extern calls whose arguments are all rt-static
// but whose (necessarily dynamic) result is consumed by something other
// than a ?pin: if the extern is deterministic for those inputs, pinning
// the result keeps the downstream computation run-time static.
func unpinnedExterns(p *Pass) {
	pinned := map[int32]bool{}
	otherUse := map[int32]bool{}
	for _, b := range p.IR.Blocks {
		use := func(v int32) {
			if v >= 0 {
				otherUse[v] = true
			}
		}
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.Op == ir.Pin {
				if inst.A >= 0 {
					pinned[inst.A] = true
				}
				continue
			}
			use(inst.A)
			use(inst.B)
			for _, a := range inst.Args {
				use(a)
			}
		}
		use(b.Term.A)
	}
	for _, b := range p.IR.Blocks {
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.Op != ir.CallExt || inst.D < 0 {
				continue
			}
			allStatic := true
			for _, a := range inst.Args {
				if a >= 0 && int(a) < len(p.Facts.VRegBT) && p.Facts.VRegBT[a] == ir.BTDynamic {
					allStatic = false
					break
				}
			}
			if allStatic && otherUse[inst.D] && !pinned[inst.D] {
				p.ReportFix("bindtime", "FV0103", SevWarning, inst.Pos,
					"pin the result: extern(...)?pin()",
					"extern %q is called with only run-time static arguments but its dynamic result is used unpinned; if the call is deterministic for these inputs, a ?pin keeps downstream computation run-time static",
					p.IR.Externs[inst.Imm])
			}
		}
	}
}

// explainBindings emits one FV0101 per dynamic named binding (param,
// local, decoded field), with the why-dynamic chain. Inlining duplicates
// bindings across call sites, so instances are deduplicated by
// declaration; the chain shown is the first dynamic instance's.
func explainBindings(p *Pass) {
	prog, facts := p.RawIR, p.RawFacts
	type declKey struct {
		name string
		pos  token.Pos
	}
	first := map[declKey]int32{}
	var order []declKey
	vregs := make([]int32, 0, len(prog.VRegNames))
	for v := range prog.VRegNames {
		vregs = append(vregs, v)
	}
	sort.Slice(vregs, func(i, j int) bool { return vregs[i] < vregs[j] })
	for _, v := range vregs {
		if int(v) >= len(facts.VRegBT) || facts.VRegBT[v] != ir.BTDynamic {
			continue
		}
		n := prog.VRegNames[v]
		k := declKey{n.Name, n.Pos}
		if _, ok := first[k]; !ok {
			first[k] = v
			order = append(order, k)
		}
	}
	for _, k := range order {
		v := first[k]
		n := prog.VRegNames[v]
		p.Reportf("bindtime", "FV0101", SevInfo, n.Pos,
			"%s %q is dynamic: %s", n.Kind, n.Name, p.chain(prog, facts, v))
	}
}

// explainGlobals emits one FV0101 per global that the program reads,
// describing its binding-time life cycle within a step.
func explainGlobals(p *Pass) {
	prog, facts := p.RawIR, p.RawFacts
	read := make([]bool, len(prog.Globals))
	for _, b := range prog.Blocks {
		for i := range b.Insts {
			if b.Insts[i].Op == ir.LoadG {
				read[b.Insts[i].Imm] = true
			}
		}
	}
	for gi, g := range prog.Globals {
		if !read[gi] || p.Checked == nil {
			continue
		}
		decl := p.Checked.Globals[g.Name]
		if decl == nil {
			continue
		}
		life := "is dynamic at step entry"
		if sp := facts.GlobalStaticStore[gi]; sp.Line > 0 {
			life += fmt.Sprintf("; becomes run-time static at the store at %s", p.Position(sp))
		}
		if ds := facts.GlobalDynStore[gi]; ds.Kind != compile.CauseNone {
			life += fmt.Sprintf("; re-assigned dynamic at %s", p.Position(ds.Pos))
		}
		p.Reportf("bindtime", "FV0101", SevInfo, decl.P,
			"global %q %s (globals are flow-sensitive, §4.1)", g.Name, life)
	}
}

// chain renders the why-dynamic provenance of vreg v by following the
// first-cause edges recorded during the lattice fixpoint. Causes point
// strictly backwards in analysis time, but a visited set guards against
// global/vreg mutual recursion.
func (p *Pass) chain(prog *ir.Program, facts *compile.Facts, v int32) string {
	var steps []string
	seen := map[int32]bool{}
	for hop := 0; hop < 8; hop++ {
		if v < 0 || int(v) >= len(facts.VRegCause) || seen[v] {
			break
		}
		seen[v] = true
		c := facts.VRegCause[v]
		switch c.Kind {
		case compile.CauseArray:
			return joinChain(append(steps, fmt.Sprintf("element of array %q read at %s (array state is dynamic)",
				prog.Arrays[c.From].Name, p.Position(c.Pos))))
		case compile.CauseExtern:
			return joinChain(append(steps, fmt.Sprintf("result of extern %q at %s",
				prog.Externs[c.From], p.Position(c.Pos))))
		case compile.CauseQueue:
			return joinChain(append(steps, fmt.Sprintf("operation on global queue %q at %s",
				prog.QueuesG[c.From].Name, p.Position(c.Pos))))
		case compile.CauseGlobal:
			return joinChain(append(steps, fmt.Sprintf("read of global %q at %s while it is dynamic",
				prog.Globals[c.From].Name, p.Position(c.Pos))))
		case compile.CauseVReg:
			step := fmt.Sprintf("computed at %s", p.Position(c.Pos))
			if n, ok := prog.VRegNames[c.From]; ok {
				step = fmt.Sprintf("value of %s %q at %s", n.Kind, n.Name, p.Position(c.Pos))
			}
			if len(steps) == 0 || steps[len(steps)-1] != step {
				steps = append(steps, step)
			}
			v = c.From
		default:
			return joinChain(append(steps, "(no recorded cause)"))
		}
	}
	return joinChain(append(steps, "..."))
}

func joinChain(steps []string) string { return strings.Join(steps, " <- ") }
