package vet

import "facile/internal/lang/source"

// Summary condenses a vet run for job records and preflight gates.
type Summary struct {
	Errors   int `json:"errors"`
	Warnings int `json:"warnings"`
	Infos    int `json:"infos"`
	// ErrorFindings holds the rendered error-severity findings (capped),
	// so a rejected submission explains itself.
	ErrorFindings []string `json:"error_findings,omitempty"`
	// Fusion carries the unit's static fusion facts (predicted coverage,
	// barriers, layout verdicts) when the unit compiled — the same proven
	// table the replay engine consults at machine-build time.
	Fusion *FusionSummary `json:"fusion,omitempty"`
}

// OK reports whether the program passes preflight (no error findings).
func (s Summary) OK() bool { return s.Errors == 0 }

// Preflight vets a single named source (as submitted to fsim/fsimd) and
// returns the summary gates act on.
func Preflight(name, src string) Summary {
	fs := source.NewSet()
	fs.Add(name, src)
	return Summarize(RunSet(fs, Options{}))
}

// PreflightFiles vets an already-assembled file set.
func PreflightFiles(fs *source.Set) Summary { return Summarize(RunSet(fs, Options{})) }

// Summarize condenses a result.
func Summarize(r *Result) Summary {
	s := Summary{
		Errors:   r.Count(SevError),
		Warnings: r.Count(SevWarning),
		Infos:    r.Count(SevInfo),
	}
	if len(r.Fusion) > 0 {
		f := r.Fusion[0]
		s.Fusion = &f
	}
	const maxShown = 8
	for _, d := range r.Diags {
		if d.Severity != SevError {
			continue
		}
		if len(s.ErrorFindings) == maxShown {
			s.ErrorFindings = append(s.ErrorFindings, "...")
			break
		}
		s.ErrorFindings = append(s.ErrorFindings, d.Pos.String()+": "+d.Code+": "+d.Message)
	}
	return s
}
