package vet

import "facile/internal/lang/ast"

// walk visits n and every statement/expression beneath it in source
// order. f returning false prunes the subtree.
func walk(n ast.Node, f func(ast.Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch n := n.(type) {
	case *ast.Block:
		for _, s := range n.Stmts {
			walk(s, f)
		}
	case *ast.LocalDecl:
		if n.Decl.Init != nil {
			walk(n.Decl.Init, f)
		}
	case *ast.Assign:
		walk(n.Target, f)
		walk(n.Value, f)
	case *ast.If:
		walk(n.Cond, f)
		walk(n.Then, f)
		if n.Else != nil {
			walk(n.Else, f)
		}
	case *ast.While:
		walk(n.Cond, f)
		walk(n.Body, f)
	case *ast.Return:
		if n.Value != nil {
			walk(n.Value, f)
		}
	case *ast.Switch:
		walk(n.Subject, f)
		for _, c := range n.Cases {
			walk(c.Body, f)
		}
		if n.Default != nil {
			walk(n.Default, f)
		}
	case *ast.PatSwitch:
		walk(n.Subject, f)
		for _, c := range n.Cases {
			walk(c.Body, f)
		}
		if n.Default != nil {
			walk(n.Default, f)
		}
	case *ast.ExprStmt:
		walk(n.X, f)
	case *ast.Index:
		walk(n.Arr, f)
		walk(n.Idx, f)
	case *ast.Unary:
		walk(n.X, f)
	case *ast.Binary:
		walk(n.L, f)
		walk(n.R, f)
	case *ast.Call:
		for _, a := range n.Args {
			walk(a, f)
		}
	case *ast.Attr:
		walk(n.X, f)
		for _, a := range n.Args {
			walk(a, f)
		}
	}
}

// eachBody calls f with every sem and fun body in the program.
func eachBody(prog *ast.Program, f func(owner string, body *ast.Block)) {
	for _, s := range prog.Sems {
		f("sem "+s.PatName, s.Body)
	}
	for _, fn := range prog.Funs {
		f("fun "+fn.Name, fn.Body)
	}
}
