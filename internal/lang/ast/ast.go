// Package ast defines the abstract syntax tree for Facile programs.
package ast

import "facile/internal/lang/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a parsed Facile source file.
type Program struct {
	Tokens  []*TokenDecl
	Pats    []*PatDecl
	Globals []*ValDecl
	Externs []*ExternDecl
	Sems    []*SemDecl
	Funs    []*FunDecl
}

// Fun returns the function named name, if declared.
func (p *Program) Fun(name string) *FunDecl {
	for _, f := range p.Funs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// ---------------------------------------------------------------- decls --

// FieldDecl is one named bit range within a token: name lo:hi (inclusive).
type FieldDecl struct {
	Name   string
	Lo, Hi int
	P      token.Pos
}

// Pos implements Node.
func (d *FieldDecl) Pos() token.Pos { return d.P }

// TokenDecl declares a fixed-width token and its fields:
//
//	token instruction[32] fields op 26:31, rd 21:25;
type TokenDecl struct {
	Name   string
	Width  int
	Fields []*FieldDecl
	P      token.Pos
}

// Pos implements Node.
func (d *TokenDecl) Pos() token.Pos { return d.P }

// PatDecl associates a name with constraints over token fields:
//
//	pat add = op==0x01 && (i==1 || fill==0);
//
// The expression may reference fields and other pattern names.
type PatDecl struct {
	Name string
	Expr Expr
	P    token.Pos
}

// Pos implements Node.
func (d *PatDecl) Pos() token.Pos { return d.P }

// ValKind distinguishes the declared forms of vals.
type ValKind int

// Val kinds.
const (
	ValInt    ValKind = iota // val x = expr;  or  val x;
	ValStream                // val PC : stream;
	ValArray                 // val R = array(32){0};
	ValQueue                 // val q = queue(8, 4);  (capacity, tuple width)
)

// ValDecl declares a global or local value.
type ValDecl struct {
	Name string
	Kind ValKind
	Init Expr // ValInt: initializer (may be nil)

	ArrayLen  int   // ValArray
	ArrayInit int64 // ValArray: fill value
	QueueCap  int   // ValQueue
	QueueW    int   // ValQueue: tuple width

	P token.Pos
}

// Pos implements Node.
func (d *ValDecl) Pos() token.Pos { return d.P }

// ExternDecl declares an external (host) function with NArgs int arguments
// returning one int. External calls are dynamic: the compiler never memoizes
// through them.
type ExternDecl struct {
	Name  string
	NArgs int
	P     token.Pos
}

// Pos implements Node.
func (d *ExternDecl) Pos() token.Pos { return d.P }

// SemDecl attaches simulation semantics to a pattern:
//
//	sem add { ... };
type SemDecl struct {
	PatName string
	Body    *Block
	P       token.Pos
}

// Pos implements Node.
func (d *SemDecl) Pos() token.Pos { return d.P }

// ParamKind classifies a main-function parameter.
type ParamKind int

// Parameter kinds.
const (
	ParamInt ParamKind = iota
	ParamQueue
)

// Param is a function parameter. Queue-typed parameters (rt-static
// instruction queues) are only legal on main.
type Param struct {
	Name     string
	Kind     ParamKind
	QueueCap int
	QueueW   int
	P        token.Pos
}

// FunDecl declares a function. The function named "main" is the memoized
// simulator step function.
type FunDecl struct {
	Name   string
	Params []*Param
	Body   *Block
	P      token.Pos
}

// Pos implements Node.
func (d *FunDecl) Pos() token.Pos { return d.P }

// ---------------------------------------------------------------- stmts --

// Stmt is implemented by statements.
type Stmt interface {
	Node
	stmt()
}

// Block is a brace-delimited statement sequence.
type Block struct {
	Stmts []Stmt
	P     token.Pos
}

// LocalDecl is a local val declaration statement.
type LocalDecl struct {
	Decl *ValDecl
}

// Assign assigns to a variable or array element.
type Assign struct {
	Target Expr // *Ident or *Index
	Value  Expr
	P      token.Pos
}

// If is a conditional statement.
type If struct {
	Cond Expr
	Then *Block
	Else Stmt // *Block, *If, or nil
	P    token.Pos
}

// While is a loop.
type While struct {
	Cond Expr
	Body *Block
	P    token.Pos
}

// Break exits the innermost loop.
type Break struct{ P token.Pos }

// Continue restarts the innermost loop.
type Continue struct{ P token.Pos }

// Return returns from the current function.
type Return struct {
	Value Expr // may be nil
	P     token.Pos
}

// SwitchCase is one case of an integer switch.
type SwitchCase struct {
	Vals []int64 // constant case labels
	Body *Block
	P    token.Pos
}

// Switch is an integer switch with no fallthrough.
type Switch struct {
	Subject Expr
	Cases   []*SwitchCase
	Default *Block // may be nil
	P       token.Pos
}

// PatCase is one case of a pattern switch.
type PatCase struct {
	PatName string
	Body    *Block
	P       token.Pos
}

// PatSwitch decodes the instruction at an address and dispatches on
// pattern:
//
//	switch (PC) { pat add: ...; pat bz: ...; default: ...; }
type PatSwitch struct {
	Subject Expr
	Cases   []*PatCase
	Default *Block // may be nil
	P       token.Pos
}

// ExprStmt evaluates an expression for effect (calls, ?exec()).
type ExprStmt struct {
	X Expr
	P token.Pos
}

func (*Block) stmt()     {}
func (*LocalDecl) stmt() {}
func (*Assign) stmt()    {}
func (*If) stmt()        {}
func (*While) stmt()     {}
func (*Break) stmt()     {}
func (*Continue) stmt()  {}
func (*Return) stmt()    {}
func (*Switch) stmt()    {}
func (*PatSwitch) stmt() {}
func (*ExprStmt) stmt()  {}

// Pos implementations.
func (s *Block) Pos() token.Pos     { return s.P }
func (s *LocalDecl) Pos() token.Pos { return s.Decl.P }
func (s *Assign) Pos() token.Pos    { return s.P }
func (s *If) Pos() token.Pos        { return s.P }
func (s *While) Pos() token.Pos     { return s.P }
func (s *Break) Pos() token.Pos     { return s.P }
func (s *Continue) Pos() token.Pos  { return s.P }
func (s *Return) Pos() token.Pos    { return s.P }
func (s *Switch) Pos() token.Pos    { return s.P }
func (s *PatSwitch) Pos() token.Pos { return s.P }
func (s *ExprStmt) Pos() token.Pos  { return s.P }

// ---------------------------------------------------------------- exprs --

// Expr is implemented by expressions.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	Val int64
	P   token.Pos
}

// Ident references a variable, parameter, global, or field (inside sem
// bodies and pattern cases).
type Ident struct {
	Name string
	P    token.Pos
}

// Index is arr[idx].
type Index struct {
	Arr Expr // *Ident naming an array
	Idx Expr
	P   token.Pos
}

// Unary is -x, !x, ~x.
type Unary struct {
	Op token.Kind
	X  Expr
	P  token.Pos
}

// Binary is x op y.
type Binary struct {
	Op   token.Kind
	L, R Expr
	P    token.Pos
}

// Call invokes a Facile function or an external.
type Call struct {
	Name string
	Args []Expr
	P    token.Pos
}

// Attr is an attribute application: x?name(args...). Attributes cover
// sign/zero extension (sext/zext), token-stream operations (exec, fetch),
// and queue operations (size, push, pop, get, set, front, full, clear).
type Attr struct {
	X    Expr
	Name string
	Args []Expr
	P    token.Pos
}

func (*IntLit) expr() {}
func (*Ident) expr()  {}
func (*Index) expr()  {}
func (*Unary) expr()  {}
func (*Binary) expr() {}
func (*Call) expr()   {}
func (*Attr) expr()   {}

// Pos implementations.
func (e *IntLit) Pos() token.Pos { return e.P }
func (e *Ident) Pos() token.Pos  { return e.P }
func (e *Index) Pos() token.Pos  { return e.P }
func (e *Unary) Pos() token.Pos  { return e.P }
func (e *Binary) Pos() token.Pos { return e.P }
func (e *Call) Pos() token.Pos   { return e.P }
func (e *Attr) Pos() token.Pos   { return e.P }
