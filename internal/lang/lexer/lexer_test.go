package lexer

import (
	"testing"

	"facile/internal/lang/token"
)

func kinds(ts []token.Token) []token.Kind {
	ks := make([]token.Kind, len(ts))
	for i, t := range ts {
		ks[i] = t.Kind
	}
	return ks
}

func TestBasicTokens(t *testing.T) {
	toks := New("val x = 10 + 0x1f;").All()
	want := []token.Kind{token.KwVal, token.IDENT, token.ASSIGN, token.INT,
		token.PLUS, token.INT, token.SEMI, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if toks[3].Val != 10 || toks[5].Val != 0x1f {
		t.Fatalf("values: %d, %d", toks[3].Val, toks[5].Val)
	}
}

func TestOperators(t *testing.T) {
	toks := New("<< >> <= >= == != && || & | ^ ~ ! ?").All()
	want := []token.Kind{token.SHL, token.SHR, token.LE, token.GE, token.EQ,
		token.NE, token.LAND, token.LOR, token.AMP, token.PIPE, token.CARET,
		token.TILDE, token.NOT, token.QUESTION, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestComments(t *testing.T) {
	toks := New(`
// line comment
val /* block
   comment */ x;
`).All()
	want := []token.Kind{token.KwVal, token.IDENT, token.SEMI, token.EOF}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	lx := New("val x; /* never closed")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestNumberBases(t *testing.T) {
	toks := New("0b1010 0xFF 1_000_000").All()
	if toks[0].Val != 10 || toks[1].Val != 255 || toks[2].Val != 1000000 {
		t.Fatalf("values: %d %d %d", toks[0].Val, toks[1].Val, toks[2].Val)
	}
}

func TestCharLiterals(t *testing.T) {
	toks := New(`'a' '\n' '\\' '\''`).All()
	want := []int64{'a', '\n', '\\', '\''}
	for i, v := range want {
		if toks[i].Kind != token.INT || toks[i].Val != v {
			t.Fatalf("char %d: %+v, want %d", i, toks[i], v)
		}
	}
}

func TestKeywords(t *testing.T) {
	toks := New("token fields pat val fun sem extern if else while break continue return switch case default array queue stream").All()
	want := []token.Kind{token.KwToken, token.KwFields, token.KwPat, token.KwVal,
		token.KwFun, token.KwSem, token.KwExtern, token.KwIf, token.KwElse,
		token.KwWhile, token.KwBreak, token.KwContinue, token.KwReturn,
		token.KwSwitch, token.KwCase, token.KwDefault, token.KwArray,
		token.KwQueue, token.KwStream, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks := New("a\n  b").All()
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("b at %v", toks[1].Pos)
	}
}

func TestIllegalChar(t *testing.T) {
	lx := New("val @ x;")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatal("expected error for '@'")
	}
}
