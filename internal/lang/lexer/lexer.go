// Package lexer tokenizes Facile source text.
//
// Comments run from "//" to end of line or between "/*" and "*/". Integer
// literals may be decimal, 0x-hexadecimal, 0b-binary, or character literals
// in single quotes.
package lexer

import (
	"fmt"

	"facile/internal/lang/token"
)

// Error is a lexical error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans Facile source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			pos := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(pos, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentCont(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()
	switch {
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if kw, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: kw, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
	case isDigit(c):
		return l.number(c, pos)
	case c == '\'':
		return l.charLit(pos)
	}
	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '+':
		return token.Token{Kind: token.PLUS, Pos: pos}
	case '-':
		return token.Token{Kind: token.MINUS, Pos: pos}
	case '*':
		return token.Token{Kind: token.STAR, Pos: pos}
	case '/':
		return token.Token{Kind: token.SLASH, Pos: pos}
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '^':
		return token.Token{Kind: token.CARET, Pos: pos}
	case '~':
		return token.Token{Kind: token.TILDE, Pos: pos}
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return token.Token{Kind: token.SHL, Pos: pos}
		}
		return two('=', token.LE, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return token.Token{Kind: token.SHR, Pos: pos}
		}
		return two('=', token.GE, token.GT)
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NE, token.NOT)
	case '?':
		return token.Token{Kind: token.QUESTION, Pos: pos}
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACK, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACK, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return token.Token{Kind: token.COLON, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) number(first byte, pos token.Pos) token.Token {
	start := l.off - 1
	base := 10
	if first == '0' && (l.peek() == 'x' || l.peek() == 'X') {
		base = 16
		l.advance()
	} else if first == '0' && (l.peek() == 'b' || l.peek() == 'B') {
		base = 2
		l.advance()
	}
	for l.off < len(l.src) {
		c := l.peek()
		if isDigit(c) || c == '_' ||
			base == 16 && (c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F') {
			l.advance()
			continue
		}
		break
	}
	lit := l.src[start:l.off]
	digits := lit
	switch base {
	case 16, 2:
		digits = lit[2:]
	}
	var v uint64
	ok := len(digits) > 0
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		if c == '_' {
			continue
		}
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = uint64(c-'A') + 10
		}
		if d >= uint64(base) {
			ok = false
			break
		}
		v = v*uint64(base) + d
	}
	if !ok {
		l.errorf(pos, "malformed integer literal %q", lit)
		return token.Token{Kind: token.ILLEGAL, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: lit, Val: int64(v), Pos: pos}
}

func (l *Lexer) charLit(pos token.Pos) token.Token {
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	c := l.advance()
	if c == '\\' && l.off < len(l.src) {
		esc := l.advance()
		switch esc {
		case 'n':
			c = '\n'
		case 't':
			c = '\t'
		case 'r':
			c = '\r'
		case '0':
			c = 0
		case '\'', '\\':
			c = esc
		default:
			l.errorf(pos, "unknown escape \\%c", esc)
		}
	}
	if l.off >= len(l.src) || l.advance() != '\'' {
		l.errorf(pos, "unterminated character literal")
		return token.Token{Kind: token.ILLEGAL, Pos: pos}
	}
	return token.Token{Kind: token.INT, Lit: fmt.Sprintf("'%c'", c), Val: int64(c), Pos: pos}
}

// All scans the entire input and returns every token up to and including EOF.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
