package types

import (
	"strings"
	"testing"

	"facile/internal/lang/parser"
	"facile/internal/lang/token"
)

func checkOK(t *testing.T, src string) *Checked {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	c, err := Check(p)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return c
}

func checkErr(t *testing.T, src, wantSub string) {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, err := Check(p); err == nil {
		t.Fatalf("expected semantic error containing %q", wantSub)
	} else if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

const miniISA = `
token w[32] fields op 26:31, rd 21:25, f 0:15;
pat a = op == 1;
pat b = op == 2;
val R = array(8){0};
sem a { R[rd] = f; }
`

func TestMinimalProgram(t *testing.T) {
	c := checkOK(t, miniISA+`fun main(pc) { PC2 = pc; set_args(pc + 4); } val PC2;`)
	if c.Main == nil || c.TokenWidth != 32 {
		t.Fatal("main/token missing")
	}
	if len(c.PatOrder) != 2 || c.PatOrder[0] != "a" {
		t.Fatalf("pat order %v", c.PatOrder)
	}
}

func TestMissingMain(t *testing.T) {
	checkErr(t, `val x;`, "must define fun main")
}

func TestRecursionRejected(t *testing.T) {
	checkErr(t, `
fun f(x) { return g(x); }
fun g(x) { return f(x); }
fun main(p) { f(p); set_args(p); }
`, "recursion")
	checkErr(t, `
fun f(x) { return f(x); }
fun main(p) { f(p); set_args(p); }
`, "recursion")
}

func TestPatternErrors(t *testing.T) {
	checkErr(t, `
token w[32] fields op 0:5;
pat a = b;
pat b = a;
fun main(p) { set_args(p); }
`, "recursively")
	checkErr(t, `
token w[32] fields op 0:5;
pat a = nosuch == 1;
fun main(p) { set_args(p); }
`, "neither a field nor a pattern")
	checkErr(t, `
token w[32] fields op 0:5;
pat a = op + 1;
fun main(p) { set_args(p); }
`, "not allowed in pattern")
}

func TestFieldRangeErrors(t *testing.T) {
	checkErr(t, `
token w[32] fields op 30:40;
fun main(p) { set_args(p); }
`, "bit range")
	checkErr(t, `
token w[80] fields op 0:5;
fun main(p) { set_args(p); }
`, "out of range")
}

func TestScopeErrors(t *testing.T) {
	checkErr(t, `fun main(p) { x = 1; set_args(p); }`, "undeclared")
	checkErr(t, `fun main(p) { val y = nope; set_args(p); }`, "undeclared")
	checkErr(t, miniISA+`fun main(p) { val z = rd; set_args(p); }`, "undeclared") // field outside sem
}

func TestFieldsInScopeInsideSemAndPatCase(t *testing.T) {
	checkOK(t, miniISA+`
fun main(p) {
    switch (p) {
      pat b: { R[rd] = f + 1; }
    }
    set_args(p);
}
`)
}

func TestQueueRules(t *testing.T) {
	checkErr(t, `
fun helper(q: queue(4, 2)) { return 0; }
fun main(p) { set_args(p); }
`, "only legal on main")
	checkErr(t, `
fun main(q: queue(4, 2), p) { q = p; set_args(q, p); }
`, "cannot assign to queue")
	checkErr(t, `
fun main(q: queue(4, 2), p) { q?push(p); set_args(q, p); }
`, "expects 2 arguments")
	checkErr(t, `
fun main(q: queue(4, 2), p) { set_args(p, p); }
`, "must be the queue parameter")
	checkOK(t, `
fun main(q: queue(4, 2), p) {
    if (!q?full()) { q?push(p, p * 2); }
    if (q?size() > 2) { q?pop(); }
    set_args(q, q?front(0) + q?get(1, 1));
}
`)
}

func TestSetArgsArity(t *testing.T) {
	checkErr(t, `fun main(a, b) { set_args(a); }`, "needs 2 arguments")
}

func TestArityErrors(t *testing.T) {
	checkErr(t, `
fun f(a, b) { return a + b; }
fun main(p) { f(p); set_args(p); }
`, "expects 2 arguments")
	checkErr(t, `
extern e(2);
fun main(p) { e(p); set_args(p); }
`, "expects 2 arguments")
	checkErr(t, `fun main(p) { nosuch(p); set_args(p); }`, "undeclared function")
}

func TestAttrErrors(t *testing.T) {
	checkErr(t, `fun main(p) { val x = p?sext(0); set_args(p); }`, "must be a constant in 1..64")
	checkErr(t, `fun main(p) { val x = p?bogus(); set_args(p); }`, "unknown attribute")
	checkErr(t, `fun main(p) { p?exec(); set_args(p); }`, "requires a token declaration")
	checkErr(t, `fun main(p) { val x = p?size(); set_args(p); }`, "requires a queue")
}

func TestDuplicateErrors(t *testing.T) {
	checkErr(t, `val x; val x; fun main(p) { set_args(p); }`, "duplicate global")
	checkErr(t, `fun f(a, a) { return 0; } fun main(p) { set_args(p); }`, "duplicate parameter")
	checkErr(t, `
token w[32] fields op 0:5, op 6:7;
fun main(p) { set_args(p); }
`, "duplicate field")
	checkErr(t, `
token w[32] fields op 0:5;
pat a = op == 0;
pat a = op == 1;
fun main(p) { set_args(p); }
`, "duplicate pattern")
	checkErr(t, `
token w[32] fields op 0:5;
pat a = op == 0;
sem a { }
sem a { }
fun main(p) { set_args(p); }
`, "duplicate sem")
	checkErr(t, `
token w[32] fields op 0:5;
sem nosem { }
fun main(p) { set_args(p); }
`, "undeclared pattern")
}

func TestLocalArrayRejected(t *testing.T) {
	checkErr(t, `fun main(p) { val a = array(4){0}; set_args(p); }`, "declared globally")
}

func TestBreakOutsideLoop(t *testing.T) {
	checkErr(t, `fun main(p) { break; set_args(p); }`, "break outside loop")
	checkErr(t, `fun main(p) { continue; set_args(p); }`, "continue outside loop")
}

func TestEvalBinaryDivByZero(t *testing.T) {
	if EvalBinary(tokSLASH(), 5, 0) != 0 || EvalBinary(tokPERCENT(), 5, 0) != 0 {
		t.Fatal("division by zero must yield 0")
	}
}

func tokSLASH() token.Kind   { return token.SLASH }
func tokPERCENT() token.Kind { return token.PERCENT }
