// Package types implements semantic analysis for Facile: symbol
// resolution, arity and shape checking, the no-recursion restriction, and
// the field-scoping rules for sem bodies and pattern cases.
package types

import (
	"fmt"

	"facile/internal/lang/ast"
	"facile/internal/lang/token"
)

// Error is a semantic error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// SetArgs is the builtin that supplies the run-time static arguments for
// the next call to main (the paper's `init = npc` idiom).
const SetArgs = "set_args"

// Checked is the output of semantic analysis: the program plus its symbol
// tables, consumed by the compiler.
type Checked struct {
	Prog *ast.Program

	TokenWidth int // instruction width in bits (single fixed-width token)
	Fields     map[string]*ast.FieldDecl
	Pats       map[string]*ast.PatDecl
	PatOrder   []string // declaration order (decision trees honor it)
	Sems       map[string]*ast.SemDecl
	Globals    map[string]*ast.ValDecl
	GlobalIdx  map[string]int // dense index per global scalar/stream
	Arrays     map[string]int // global array name -> dense index
	Queues     map[string]int // global queue name -> dense index
	Externs    map[string]*ast.ExternDecl
	ExternIdx  map[string]int
	Funs       map[string]*ast.FunDecl
	Main       *ast.FunDecl
}

// queue attribute arities; -1 marks push (width-dependent).
var queueAttrs = map[string]int{
	"size": 0, "push": -1, "pop": 0, "get": 2, "set": 3,
	"front": 1, "full": 0, "clear": 0,
}

type checker struct {
	c         *Checked
	errs      []error
	callGraph map[string]map[string]bool
}

func (ck *checker) errorf(pos token.Pos, format string, args ...any) {
	ck.errs = append(ck.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Check performs semantic analysis of prog.
func Check(prog *ast.Program) (*Checked, error) {
	c := &Checked{
		Prog:      prog,
		Fields:    make(map[string]*ast.FieldDecl),
		Pats:      make(map[string]*ast.PatDecl),
		Sems:      make(map[string]*ast.SemDecl),
		Globals:   make(map[string]*ast.ValDecl),
		GlobalIdx: make(map[string]int),
		Arrays:    make(map[string]int),
		Queues:    make(map[string]int),
		Externs:   make(map[string]*ast.ExternDecl),
		ExternIdx: make(map[string]int),
		Funs:      make(map[string]*ast.FunDecl),
	}
	ck := &checker{c: c, callGraph: map[string]map[string]bool{}}
	ck.collect()
	ck.checkPats()
	ck.checkSems()
	ck.checkFuns()
	ck.checkNoRecursion()
	if len(ck.errs) > 0 {
		return nil, ck.errs[0]
	}
	return c, nil
}

func (ck *checker) collect() {
	c := ck.c
	for _, t := range c.Prog.Tokens {
		if c.TokenWidth != 0 && t.Width != c.TokenWidth {
			ck.errorf(t.P, "all tokens must share one width in this dialect (fixed-width ISAs)")
		}
		if t.Width <= 0 || t.Width > 64 {
			ck.errorf(t.P, "token width %d out of range 1..64", t.Width)
		}
		c.TokenWidth = t.Width
		for _, f := range t.Fields {
			if _, dup := c.Fields[f.Name]; dup {
				ck.errorf(f.P, "duplicate field %q", f.Name)
			}
			if f.Lo < 0 || f.Hi >= t.Width || f.Lo > f.Hi {
				ck.errorf(f.P, "field %q bit range %d:%d invalid for %d-bit token",
					f.Name, f.Lo, f.Hi, t.Width)
			}
			c.Fields[f.Name] = f
		}
	}
	for _, p := range c.Prog.Pats {
		if _, dup := c.Pats[p.Name]; dup {
			ck.errorf(p.P, "duplicate pattern %q", p.Name)
		}
		c.Pats[p.Name] = p
		c.PatOrder = append(c.PatOrder, p.Name)
	}
	for _, e := range c.Prog.Externs {
		if _, dup := c.Externs[e.Name]; dup {
			ck.errorf(e.P, "duplicate extern %q", e.Name)
		}
		c.ExternIdx[e.Name] = len(c.ExternIdx)
		c.Externs[e.Name] = e
	}
	for _, g := range c.Prog.Globals {
		if _, dup := c.Globals[g.Name]; dup {
			ck.errorf(g.P, "duplicate global %q", g.Name)
		}
		c.Globals[g.Name] = g
		switch g.Kind {
		case ast.ValArray:
			if g.ArrayLen <= 0 {
				ck.errorf(g.P, "array %q must have positive length", g.Name)
			}
			c.Arrays[g.Name] = len(c.Arrays)
		case ast.ValQueue:
			if g.QueueCap <= 0 || g.QueueW <= 0 {
				ck.errorf(g.P, "queue %q needs positive capacity and width", g.Name)
			}
			c.Queues[g.Name] = len(c.Queues)
		default:
			c.GlobalIdx[g.Name] = len(c.GlobalIdx)
			if g.Init != nil {
				if _, ok := constFold(g.Init); !ok {
					ck.errorf(g.P, "global %q initializer must be constant", g.Name)
				}
			}
		}
	}
	for _, f := range c.Prog.Funs {
		if _, dup := c.Funs[f.Name]; dup {
			ck.errorf(f.P, "duplicate function %q", f.Name)
		}
		if _, clash := c.Externs[f.Name]; clash {
			ck.errorf(f.P, "function %q collides with an extern", f.Name)
		}
		c.Funs[f.Name] = f
	}
	c.Main = c.Funs["main"]
	if c.Main == nil {
		ck.errorf(token.Pos{Line: 1, Col: 1}, "program must define fun main — the simulator step function")
		return
	}
	for _, f := range c.Prog.Funs {
		seen := map[string]bool{}
		for _, prm := range f.Params {
			if seen[prm.Name] {
				ck.errorf(prm.P, "duplicate parameter %q", prm.Name)
			}
			seen[prm.Name] = true
			if prm.Kind == ast.ParamQueue && f != c.Main {
				ck.errorf(prm.P, "queue parameters (run-time static state) are only legal on main")
			}
		}
	}
}

// ConstFold evaluates constant expressions (literals combined with
// arithmetic); ok is false when e is not constant.
func ConstFold(e ast.Expr) (int64, bool) { return constFold(e) }

// constFold evaluates constant expressions (literals combined with
// arithmetic) for initializers.
func constFold(e ast.Expr) (int64, bool) {
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Val, true
	case *ast.Unary:
		v, ok := constFold(e.X)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case token.MINUS:
			return -v, true
		case token.TILDE:
			return ^v, true
		case token.NOT:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
	case *ast.Binary:
		l, ok1 := constFold(e.L)
		r, ok2 := constFold(e.R)
		if ok1 && ok2 {
			return EvalBinary(e.Op, l, r), true
		}
	}
	return 0, false
}

// EvalBinary evaluates a Facile binary operator over int64 with the
// language's semantics (shared by the checker, compiler, and runtime).
func EvalBinary(op token.Kind, l, r int64) int64 {
	b := func(x bool) int64 {
		if x {
			return 1
		}
		return 0
	}
	switch op {
	case token.PLUS:
		return l + r
	case token.MINUS:
		return l - r
	case token.STAR:
		return l * r
	case token.SLASH:
		if r == 0 {
			return 0
		}
		return l / r
	case token.PERCENT:
		if r == 0 {
			return 0
		}
		return l % r
	case token.AMP:
		return l & r
	case token.PIPE:
		return l | r
	case token.CARET:
		return l ^ r
	case token.SHL:
		return l << (uint64(r) & 63)
	case token.SHR:
		// Facile integers are signed 64-bit; >> is an arithmetic shift.
		// Logical shifts are provided by host externs where needed.
		return l >> (uint64(r) & 63)
	case token.EQ:
		return b(l == r)
	case token.NE:
		return b(l != r)
	case token.LT:
		return b(l < r)
	case token.LE:
		return b(l <= r)
	case token.GT:
		return b(l > r)
	case token.GE:
		return b(l >= r)
	case token.LAND:
		return b(l != 0 && r != 0)
	case token.LOR:
		return b(l != 0 || r != 0)
	}
	panic(fmt.Sprintf("types: EvalBinary on %v", op))
}

// checkPats verifies pattern expressions reference only fields, integer
// literals, comparisons/logical operators, and other (earlier or later,
// acyclic) patterns.
func (ck *checker) checkPats() {
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string, pos token.Pos)
	var checkExpr func(e ast.Expr)
	checkExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.IntLit:
		case *ast.Ident:
			if _, isField := ck.c.Fields[e.Name]; isField {
				return
			}
			if _, isPat := ck.c.Pats[e.Name]; isPat {
				visit(e.Name, e.P)
				return
			}
			ck.errorf(e.P, "pattern expression references %q, which is neither a field nor a pattern", e.Name)
		case *ast.Unary:
			if e.Op != token.NOT {
				ck.errorf(e.P, "only ! is allowed as a unary operator in patterns")
			}
			checkExpr(e.X)
		case *ast.Binary:
			switch e.Op {
			case token.LAND, token.LOR, token.EQ, token.NE, token.LT, token.LE, token.GT, token.GE, token.AMP, token.SHR, token.SHL:
			default:
				ck.errorf(e.P, "operator %v not allowed in pattern expressions", e.Op)
			}
			checkExpr(e.L)
			checkExpr(e.R)
		default:
			ck.errorf(e.Pos(), "expression form not allowed in patterns")
		}
	}
	visit = func(name string, pos token.Pos) {
		switch state[name] {
		case 1:
			ck.errorf(pos, "pattern %q is recursively defined", name)
			return
		case 2:
			return
		}
		state[name] = 1
		checkExpr(ck.c.Pats[name].Expr)
		state[name] = 2
	}
	for _, name := range ck.c.PatOrder {
		visit(name, ck.c.Pats[name].P)
	}
}

func (ck *checker) checkSems() {
	for _, s := range ck.c.Prog.Sems {
		if _, ok := ck.c.Pats[s.PatName]; !ok {
			ck.errorf(s.P, "sem for undeclared pattern %q", s.PatName)
			continue
		}
		if _, dup := ck.c.Sems[s.PatName]; dup {
			ck.errorf(s.P, "duplicate sem for pattern %q", s.PatName)
		}
		ck.c.Sems[s.PatName] = s
	}
}

// scope tracks local bindings during body checking.
type scope struct {
	parent *scope
	names  map[string]ast.ValKind // locals and params (queue params as ValQueue)
}

func (s *scope) lookup(name string) (ast.ValKind, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if k, ok := cur.names[name]; ok {
			return k, true
		}
	}
	return 0, false
}

func (s *scope) child() *scope {
	return &scope{parent: s, names: map[string]ast.ValKind{}}
}

type bodyChecker struct {
	ck        *checker
	fun       *ast.FunDecl // nil for sem bodies
	inSem     bool         // fields in scope
	loopDepth int
	calls     map[string]bool // functions this body calls
}

func (ck *checker) checkFuns() {
	for _, f := range ck.c.Prog.Funs {
		bc := &bodyChecker{ck: ck, fun: f, calls: map[string]bool{}}
		sc := &scope{names: map[string]ast.ValKind{}}
		for _, prm := range f.Params {
			k := ast.ValInt
			if prm.Kind == ast.ParamQueue {
				k = ast.ValQueue
			}
			sc.names[prm.Name] = k
		}
		bc.block(f.Body, sc)
		ck.callGraph[f.Name] = bc.calls
	}
	for _, s := range ck.c.Prog.Sems {
		bc := &bodyChecker{ck: ck, inSem: true, calls: map[string]bool{}}
		bc.block(s.Body, &scope{names: map[string]ast.ValKind{}})
		ck.callGraph["sem "+s.PatName] = bc.calls
	}
}

func (bc *bodyChecker) block(b *ast.Block, sc *scope) {
	inner := sc.child()
	for _, s := range b.Stmts {
		bc.stmt(s, inner)
	}
}

func (bc *bodyChecker) stmt(s ast.Stmt, sc *scope) {
	ck := bc.ck
	switch s := s.(type) {
	case *ast.Block:
		bc.block(s, sc)
	case *ast.LocalDecl:
		d := s.Decl
		switch d.Kind {
		case ast.ValArray, ast.ValQueue:
			ck.errorf(d.P, "arrays and queues must be declared globally")
		}
		if d.Init != nil {
			bc.expr(d.Init, sc)
		}
		if _, dup := sc.names[d.Name]; dup {
			ck.errorf(d.P, "redeclaration of %q in the same block", d.Name)
		}
		sc.names[d.Name] = d.Kind
	case *ast.Assign:
		bc.expr(s.Value, sc)
		switch t := s.Target.(type) {
		case *ast.Ident:
			if k, ok := sc.lookup(t.Name); ok {
				if k == ast.ValQueue {
					ck.errorf(t.P, "cannot assign to queue %q; use queue attributes", t.Name)
				}
				return
			}
			if g, ok := ck.c.Globals[t.Name]; ok {
				if g.Kind == ast.ValArray || g.Kind == ast.ValQueue {
					ck.errorf(t.P, "cannot assign whole %s %q", kindName(g.Kind), t.Name)
				}
				return
			}
			ck.errorf(t.P, "assignment to undeclared %q", t.Name)
		case *ast.Index:
			bc.expr(t.Idx, sc)
			arr, ok := t.Arr.(*ast.Ident)
			if !ok {
				ck.errorf(t.P, "indexed assignment target must be a named array")
				return
			}
			if g, ok := ck.c.Globals[arr.Name]; !ok || g.Kind != ast.ValArray {
				ck.errorf(t.P, "%q is not a global array", arr.Name)
			}
		}
	case *ast.If:
		bc.expr(s.Cond, sc)
		bc.block(s.Then, sc)
		if s.Else != nil {
			bc.stmt(s.Else, sc)
		}
	case *ast.While:
		bc.expr(s.Cond, sc)
		bc.loopDepth++
		bc.block(s.Body, sc)
		bc.loopDepth--
	case *ast.Break:
		if bc.loopDepth == 0 {
			ck.errorf(s.P, "break outside loop")
		}
	case *ast.Continue:
		if bc.loopDepth == 0 {
			ck.errorf(s.P, "continue outside loop")
		}
	case *ast.Return:
		if s.Value != nil {
			bc.expr(s.Value, sc)
		}
	case *ast.Switch:
		bc.expr(s.Subject, sc)
		seen := map[int64]bool{}
		for _, c := range s.Cases {
			for _, v := range c.Vals {
				if seen[v] {
					ck.errorf(c.P, "duplicate case %d", v)
				}
				seen[v] = true
			}
			bc.block(c.Body, sc)
		}
		if s.Default != nil {
			bc.block(s.Default, sc)
		}
	case *ast.PatSwitch:
		bc.expr(s.Subject, sc)
		seen := map[string]bool{}
		for _, c := range s.Cases {
			if _, ok := ck.c.Pats[c.PatName]; !ok {
				ck.errorf(c.P, "unknown pattern %q", c.PatName)
			}
			if seen[c.PatName] {
				ck.errorf(c.P, "duplicate pattern case %q", c.PatName)
			}
			seen[c.PatName] = true
			saved := bc.inSem
			bc.inSem = true // fields in scope inside pattern cases
			bc.block(c.Body, sc)
			bc.inSem = saved
		}
		if s.Default != nil {
			bc.block(s.Default, sc)
		}
	case *ast.ExprStmt:
		bc.expr(s.X, sc)
	}
}

func kindName(k ast.ValKind) string {
	switch k {
	case ast.ValArray:
		return "array"
	case ast.ValQueue:
		return "queue"
	case ast.ValStream:
		return "stream"
	default:
		return "val"
	}
}

func (bc *bodyChecker) expr(e ast.Expr, sc *scope) {
	ck := bc.ck
	switch e := e.(type) {
	case *ast.IntLit:
	case *ast.Ident:
		if _, ok := sc.lookup(e.Name); ok {
			return
		}
		if _, ok := ck.c.Globals[e.Name]; ok {
			return
		}
		if bc.inSem {
			if _, ok := ck.c.Fields[e.Name]; ok {
				return
			}
		}
		ck.errorf(e.P, "undeclared identifier %q", e.Name)
	case *ast.Index:
		arr, ok := e.Arr.(*ast.Ident)
		if !ok {
			ck.errorf(e.P, "only named arrays can be indexed")
			return
		}
		if g, ok := ck.c.Globals[arr.Name]; !ok || g.Kind != ast.ValArray {
			ck.errorf(e.P, "%q is not a global array", arr.Name)
		}
		bc.expr(e.Idx, sc)
	case *ast.Unary:
		bc.expr(e.X, sc)
	case *ast.Binary:
		bc.expr(e.L, sc)
		bc.expr(e.R, sc)
	case *ast.Call:
		bc.call(e, sc)
	case *ast.Attr:
		bc.attr(e, sc)
	}
}

func (bc *bodyChecker) call(e *ast.Call, sc *scope) {
	ck := bc.ck
	for _, a := range e.Args {
		bc.expr(a, sc)
	}
	if e.Name == SetArgs {
		if bc.fun == nil || bc.fun.Name != "main" {
			// set_args is legal anywhere main's inlined body can reach, so
			// allow it in sems and helpers too; arity is checked against main.
		}
		main := ck.c.Main
		if main == nil {
			return
		}
		if len(e.Args) != len(main.Params) {
			ck.errorf(e.P, "%s needs %d arguments to match main's parameters", SetArgs, len(main.Params))
		}
		for i, a := range e.Args {
			if i < len(main.Params) && main.Params[i].Kind == ast.ParamQueue {
				id, ok := a.(*ast.Ident)
				if !ok {
					ck.errorf(a.Pos(), "argument %d of %s must name main's queue parameter %q",
						i+1, SetArgs, main.Params[i].Name)
					continue
				}
				if k, found := sc.lookup(id.Name); !found || k != ast.ValQueue {
					ck.errorf(a.Pos(), "argument %d of %s must be the queue parameter %q",
						i+1, SetArgs, main.Params[i].Name)
				}
			}
		}
		return
	}
	if f, ok := ck.c.Funs[e.Name]; ok {
		if e.Name == "main" {
			ck.errorf(e.P, "main cannot be called directly")
		}
		if len(e.Args) != len(f.Params) {
			ck.errorf(e.P, "%q expects %d arguments, got %d", e.Name, len(f.Params), len(e.Args))
		}
		bc.calls[e.Name] = true
		return
	}
	if x, ok := ck.c.Externs[e.Name]; ok {
		if len(e.Args) != x.NArgs {
			ck.errorf(e.P, "extern %q expects %d arguments, got %d", e.Name, x.NArgs, len(e.Args))
		}
		return
	}
	ck.errorf(e.P, "call to undeclared function %q", e.Name)
}

func (bc *bodyChecker) attr(e *ast.Attr, sc *scope) {
	ck := bc.ck
	for _, a := range e.Args {
		bc.expr(a, sc)
	}
	// Queue attributes require a queue receiver.
	if arity, isQ := queueAttrs[e.Name]; isQ {
		id, ok := e.X.(*ast.Ident)
		if !ok {
			ck.errorf(e.P, "?%s requires a named queue", e.Name)
			return
		}
		var width int
		if k, found := sc.lookup(id.Name); found && k == ast.ValQueue {
			if main := ck.c.Main; main != nil {
				for _, prm := range main.Params {
					if prm.Name == id.Name {
						width = prm.QueueW
					}
				}
			}
		} else if g, found := ck.c.Globals[id.Name]; found && g.Kind == ast.ValQueue {
			width = g.QueueW
		} else {
			ck.errorf(e.P, "?%s requires a queue, but %q is not one", e.Name, id.Name)
			return
		}
		want := arity
		if e.Name == "push" {
			want = width
		}
		if len(e.Args) != want {
			ck.errorf(e.P, "?%s on %q expects %d arguments, got %d", e.Name, id.Name, want, len(e.Args))
		}
		return
	}
	switch e.Name {
	case "sext", "zext":
		bc.expr(e.X, sc)
		if len(e.Args) != 1 {
			ck.errorf(e.P, "?%s expects one argument (bit width)", e.Name)
			return
		}
		if v, ok := constFold(e.Args[0]); !ok || v < 1 || v > 64 {
			ck.errorf(e.P, "?%s width must be a constant in 1..64", e.Name)
		}
	case "pin":
		bc.expr(e.X, sc)
		if len(e.Args) != 0 {
			ck.errorf(e.P, "?pin takes no arguments")
		}
	case "exec", "fetch":
		bc.expr(e.X, sc)
		if len(e.Args) != 0 {
			ck.errorf(e.P, "?%s takes no arguments", e.Name)
		}
		if ck.c.TokenWidth == 0 {
			ck.errorf(e.P, "?%s requires a token declaration", e.Name)
		}
	default:
		ck.errorf(e.P, "unknown attribute ?%s", e.Name)
	}
}

// checkNoRecursion enforces the language restriction that simplifies
// inter-procedural analysis and miss recovery (paper §3.2).
func (ck *checker) checkNoRecursion() {
	// The call graph includes sem bodies, reachable via ?exec from any
	// function; approximate by linking every function that uses ?exec or a
	// pattern switch to every sem. Conservatively: link all funs to all
	// sems, and forbid sems calling anything that can reach a sem or main.
	state := map[string]int{}
	var visit func(name string, pos token.Pos) bool
	visit = func(name string, pos token.Pos) bool {
		switch state[name] {
		case 1:
			ck.errorf(pos, "recursion detected through %q — Facile forbids recursion", name)
			return false
		case 2:
			return true
		}
		state[name] = 1
		for callee := range ck.callGraph[name] {
			f := ck.c.Funs[callee]
			if f == nil {
				continue
			}
			if !visit(callee, f.P) {
				return false
			}
		}
		state[name] = 2
		return true
	}
	for name, f := range ck.c.Funs {
		visit(name, f.P)
	}
	for _, s := range ck.c.Prog.Sems {
		// sems may call helper functions; helpers must not use ?exec
		// (which would re-enter sems). Detect: any function reachable from
		// a sem that itself (transitively) dispatches is rejected at
		// compile time by the inliner; here we just check direct cycles.
		visit("sem "+s.PatName, s.P)
	}
}
