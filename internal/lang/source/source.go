// Package source maps positions in a concatenated multi-file Facile
// program back to per-file coordinates.
//
// The compiler driver concatenates its input files into one blob (each
// file followed by a newline, the conventional ISA + step-function
// layout), so every token.Pos the pipeline reports is relative to that
// blob. A Set records where each file starts inside the blob and resolves
// blob positions to real file:line:col spans for diagnostics.
package source

import (
	"fmt"
	"strings"

	"facile/internal/lang/token"
)

// Position is a resolved source position: a file name plus 1-based line
// and column within that file. A zero Position means "unknown".
type Position struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// IsValid reports whether the position carries a real line number.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders file:line:col (or just the file, or "-", when parts are
// missing), the format editors and CI annotations understand.
func (p Position) String() string {
	if !p.IsValid() {
		if p.File != "" {
			return p.File
		}
		return "-"
	}
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

type file struct {
	name string
	base int // 1-based first blob line belonging to this file
	nl   int // number of blob lines the file occupies (incl. the added \n)
}

// Set is an ordered collection of named sources forming one concatenated
// program.
type Set struct {
	files []file
	blob  strings.Builder
	lines int // total blob lines emitted so far
}

// NewSet returns an empty Set.
func NewSet() *Set { return &Set{} }

// Add appends one file to the set, mirroring the driver convention of
// writing the file content followed by a single newline.
func (s *Set) Add(name, src string) {
	nl := strings.Count(src, "\n") + 1 // the trailing "\n" terminates the last line
	s.files = append(s.files, file{name: name, base: s.lines + 1, nl: nl})
	s.blob.WriteString(src)
	s.blob.WriteString("\n")
	s.lines += nl
}

// Cat returns the concatenated program text, byte-identical to what the
// driver feeds the compiler.
func (s *Set) Cat() string { return s.blob.String() }

// Files returns the file names in order.
func (s *Set) Files() []string {
	out := make([]string, len(s.files))
	for i, f := range s.files {
		out[i] = f.name
	}
	return out
}

// Resolve maps a blob-relative position to a file-relative one. Positions
// with no line information (synthesized nodes) resolve to an invalid
// Position; positions past the last file stick to the last file.
func (s *Set) Resolve(p token.Pos) Position {
	if p.Line <= 0 || len(s.files) == 0 {
		return Position{}
	}
	// Files are in ascending base order; find the last file whose first
	// line is <= p.Line.
	lo, hi := 0, len(s.files)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if s.files[mid].base <= p.Line {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	f := s.files[lo]
	return Position{File: f.name, Line: p.Line - f.base + 1, Col: p.Col}
}
