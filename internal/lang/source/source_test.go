package source

import (
	"testing"

	"facile/internal/lang/token"
)

func TestResolveAcrossFiles(t *testing.T) {
	s := NewSet()
	s.Add("a.fac", "line1\nline2") // no trailing newline: 2 lines + added \n
	s.Add("b.fac", "b1\nb2\nb3\n") // trailing newline: 3 lines + blank line 4
	s.Add("c.fac", "only")

	if got, want := s.Cat(), "line1\nline2\nb1\nb2\nb3\n\nonly\n"; got != want {
		t.Fatalf("Cat() = %q, want %q", got, want)
	}
	cases := []struct {
		line, col int
		want      Position
	}{
		{1, 1, Position{"a.fac", 1, 1}},
		{2, 5, Position{"a.fac", 2, 5}},
		{3, 1, Position{"b.fac", 1, 1}},
		{5, 2, Position{"b.fac", 3, 2}},
		{6, 1, Position{"b.fac", 4, 1}}, // the appended blank line
		{7, 3, Position{"c.fac", 1, 3}},
		{99, 1, Position{"c.fac", 93, 1}}, // past-the-end sticks to the last file
	}
	for _, c := range cases {
		got := s.Resolve(token.Pos{Line: c.line, Col: c.col})
		if got != c.want {
			t.Errorf("Resolve(%d:%d) = %v, want %v", c.line, c.col, got, c.want)
		}
	}
}

func TestResolveUnknown(t *testing.T) {
	s := NewSet()
	s.Add("a.fac", "x\n")
	if got := s.Resolve(token.Pos{}); got.IsValid() {
		t.Fatalf("zero pos resolved to %v", got)
	}
	if got := (&Set{}).Resolve(token.Pos{Line: 1, Col: 1}); got.IsValid() {
		t.Fatalf("empty set resolved to %v", got)
	}
}

func TestPositionString(t *testing.T) {
	if got := (Position{"f.fac", 3, 7}).String(); got != "f.fac:3:7" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Position{}).String(); got != "-" {
		t.Fatalf("zero String() = %q", got)
	}
	if got := (Position{File: "f.fac"}).String(); got != "f.fac" {
		t.Fatalf("file-only String() = %q", got)
	}
}
