// Package parser implements a recursive-descent parser for Facile.
package parser

import (
	"fmt"

	"facile/internal/lang/ast"
	"facile/internal/lang/lexer"
	"facile/internal/lang/token"
)

// Error is a syntax error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// Parse parses a Facile source file.
func Parse(src string) (*ast.Program, error) {
	lx := lexer.New(src)
	toks := lx.All()
	if errs := lx.Errors(); len(errs) > 0 {
		return nil, errs[0]
	}
	p := &parser{toks: toks}
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return nil, p.errs[0]
	}
	return prog, nil
}

func (p *parser) cur() token.Token  { return p.toks[p.pos] }
func (p *parser) peek() token.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	p.errs = append(p.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (p *parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	t := p.cur()
	p.errorf(t.Pos, "expected %s, found %s", k, t)
	// Panic-free recovery: synthesize the expected token and continue; the
	// first recorded error is what the caller reports.
	return token.Token{Kind: k, Pos: t.Pos}
}

func (p *parser) expectIdent() string {
	if p.at(token.IDENT) {
		return p.next().Lit
	}
	t := p.cur()
	p.errorf(t.Pos, "expected identifier, found %s", t)
	p.next()
	return "_error_"
}

func (p *parser) expectInt() int64 {
	if p.at(token.INT) {
		return p.next().Val
	}
	t := p.cur()
	p.errorf(t.Pos, "expected integer, found %s", t)
	p.next()
	return 0
}

func (p *parser) parseProgram() *ast.Program {
	prog := &ast.Program{}
	for !p.at(token.EOF) && len(p.errs) < 10 {
		switch p.cur().Kind {
		case token.KwToken:
			prog.Tokens = append(prog.Tokens, p.parseTokenDecl())
		case token.KwPat:
			prog.Pats = append(prog.Pats, p.parsePatDecl())
		case token.KwVal:
			prog.Globals = append(prog.Globals, p.parseValDecl())
		case token.KwExtern:
			prog.Externs = append(prog.Externs, p.parseExternDecl())
		case token.KwSem:
			prog.Sems = append(prog.Sems, p.parseSemDecl())
		case token.KwFun:
			prog.Funs = append(prog.Funs, p.parseFunDecl())
		default:
			t := p.next()
			p.errorf(t.Pos, "expected declaration, found %s", t)
		}
	}
	return prog
}

// token NAME[width] fields f lo:hi, ... ;
func (p *parser) parseTokenDecl() *ast.TokenDecl {
	pos := p.expect(token.KwToken).Pos
	d := &ast.TokenDecl{P: pos}
	d.Name = p.expectIdent()
	p.expect(token.LBRACK)
	d.Width = int(p.expectInt())
	p.expect(token.RBRACK)
	p.expect(token.KwFields)
	for {
		f := &ast.FieldDecl{P: p.cur().Pos}
		f.Name = p.expectIdent()
		f.Lo = int(p.expectInt())
		p.expect(token.COLON)
		f.Hi = int(p.expectInt())
		d.Fields = append(d.Fields, f)
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMI)
	return d
}

// pat name = expr ;
func (p *parser) parsePatDecl() *ast.PatDecl {
	pos := p.expect(token.KwPat).Pos
	d := &ast.PatDecl{P: pos}
	d.Name = p.expectIdent()
	p.expect(token.ASSIGN)
	d.Expr = p.parseExpr()
	p.expect(token.SEMI)
	return d
}

// val name ;                      (int, zero)
// val name = expr ;               (int)
// val name : stream ;             (stream)
// val name = array(N){init} ;     (array)
// val name = queue(cap, width) ;  (queue)
func (p *parser) parseValDecl() *ast.ValDecl {
	pos := p.expect(token.KwVal).Pos
	d := &ast.ValDecl{P: pos}
	d.Name = p.expectIdent()
	switch {
	case p.accept(token.COLON):
		p.expect(token.KwStream)
		d.Kind = ast.ValStream
	case p.accept(token.ASSIGN):
		switch p.cur().Kind {
		case token.KwArray:
			p.next()
			p.expect(token.LPAREN)
			d.Kind = ast.ValArray
			d.ArrayLen = int(p.expectInt())
			p.expect(token.RPAREN)
			p.expect(token.LBRACE)
			neg := p.accept(token.MINUS)
			d.ArrayInit = p.expectInt()
			if neg {
				d.ArrayInit = -d.ArrayInit
			}
			p.expect(token.RBRACE)
		case token.KwQueue:
			p.next()
			p.expect(token.LPAREN)
			d.Kind = ast.ValQueue
			d.QueueCap = int(p.expectInt())
			p.expect(token.COMMA)
			d.QueueW = int(p.expectInt())
			p.expect(token.RPAREN)
		default:
			d.Kind = ast.ValInt
			d.Init = p.parseExpr()
		}
	default:
		d.Kind = ast.ValInt
	}
	p.expect(token.SEMI)
	return d
}

// extern name(nargs) ;
func (p *parser) parseExternDecl() *ast.ExternDecl {
	pos := p.expect(token.KwExtern).Pos
	d := &ast.ExternDecl{P: pos}
	d.Name = p.expectIdent()
	p.expect(token.LPAREN)
	d.NArgs = int(p.expectInt())
	p.expect(token.RPAREN)
	p.expect(token.SEMI)
	return d
}

// sem patname { ... } ;
func (p *parser) parseSemDecl() *ast.SemDecl {
	pos := p.expect(token.KwSem).Pos
	d := &ast.SemDecl{P: pos}
	d.PatName = p.expectIdent()
	d.Body = p.parseBlock()
	p.accept(token.SEMI) // terminating semicolon is optional
	return d
}

// fun name(params) { ... }
func (p *parser) parseFunDecl() *ast.FunDecl {
	pos := p.expect(token.KwFun).Pos
	d := &ast.FunDecl{P: pos}
	d.Name = p.expectIdent()
	p.expect(token.LPAREN)
	if !p.at(token.RPAREN) {
		for {
			prm := &ast.Param{P: p.cur().Pos}
			prm.Name = p.expectIdent()
			if p.accept(token.COLON) {
				p.expect(token.KwQueue)
				p.expect(token.LPAREN)
				prm.Kind = ast.ParamQueue
				prm.QueueCap = int(p.expectInt())
				p.expect(token.COMMA)
				prm.QueueW = int(p.expectInt())
				p.expect(token.RPAREN)
			}
			d.Params = append(d.Params, prm)
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	d.Body = p.parseBlock()
	return d
}

func (p *parser) parseBlock() *ast.Block {
	b := &ast.Block{P: p.cur().Pos}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) < 10 {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.SEMI:
		p.next()
		return nil
	case token.LBRACE:
		return p.parseBlock()
	case token.KwVal:
		d := p.parseValDecl()
		return &ast.LocalDecl{Decl: d}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		pos := p.next().Pos
		p.expect(token.LPAREN)
		cond := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.While{Cond: cond, Body: p.parseBlock(), P: pos}
	case token.KwBreak:
		pos := p.next().Pos
		p.expect(token.SEMI)
		return &ast.Break{P: pos}
	case token.KwContinue:
		pos := p.next().Pos
		p.expect(token.SEMI)
		return &ast.Continue{P: pos}
	case token.KwReturn:
		pos := p.next().Pos
		var v ast.Expr
		if !p.at(token.SEMI) {
			v = p.parseExpr()
		}
		p.expect(token.SEMI)
		return &ast.Return{Value: v, P: pos}
	case token.KwSwitch:
		return p.parseSwitch()
	}
	// assignment or expression statement
	pos := p.cur().Pos
	e := p.parseExpr()
	if p.accept(token.ASSIGN) {
		v := p.parseExpr()
		p.expect(token.SEMI)
		switch e.(type) {
		case *ast.Ident, *ast.Index:
		default:
			p.errorf(pos, "invalid assignment target")
		}
		return &ast.Assign{Target: e, Value: v, P: pos}
	}
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: e, P: pos}
}

func (p *parser) parseIf() ast.Stmt {
	pos := p.expect(token.KwIf).Pos
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.blockOrSingle()
	var els ast.Stmt
	if p.accept(token.KwElse) {
		if p.at(token.KwIf) {
			els = p.parseIf()
		} else {
			els = p.blockOrSingle()
		}
	}
	return &ast.If{Cond: cond, Then: then, Else: els, P: pos}
}

// blockOrSingle allows `if (c) stmt;` as shorthand for a one-statement block.
func (p *parser) blockOrSingle() *ast.Block {
	if p.at(token.LBRACE) {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	s := p.parseStmt()
	b := &ast.Block{P: pos}
	if s != nil {
		b.Stmts = append(b.Stmts, s)
	}
	return b
}

// parseSwitch handles both integer switches and pattern switches; the two
// are distinguished by the first case keyword.
func (p *parser) parseSwitch() ast.Stmt {
	pos := p.expect(token.KwSwitch).Pos
	p.expect(token.LPAREN)
	subj := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)

	var intCases []*ast.SwitchCase
	var patCases []*ast.PatCase
	var def *ast.Block
	for !p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) < 10 {
		switch p.cur().Kind {
		case token.KwCase:
			cpos := p.next().Pos
			sc := &ast.SwitchCase{P: cpos}
			for {
				neg := p.accept(token.MINUS)
				v := p.expectInt()
				if neg {
					v = -v
				}
				sc.Vals = append(sc.Vals, v)
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.COLON)
			sc.Body = p.parseCaseBody()
			intCases = append(intCases, sc)
		case token.KwPat:
			cpos := p.next().Pos
			pc := &ast.PatCase{P: cpos}
			pc.PatName = p.expectIdent()
			p.expect(token.COLON)
			pc.Body = p.parseCaseBody()
			patCases = append(patCases, pc)
		case token.KwDefault:
			p.next()
			p.expect(token.COLON)
			def = p.parseCaseBody()
		default:
			t := p.next()
			p.errorf(t.Pos, "expected case, pat, or default in switch, found %s", t)
		}
	}
	p.expect(token.RBRACE)
	if len(patCases) > 0 {
		if len(intCases) > 0 {
			p.errorf(pos, "switch mixes integer and pattern cases")
		}
		return &ast.PatSwitch{Subject: subj, Cases: patCases, Default: def, P: pos}
	}
	return &ast.Switch{Subject: subj, Cases: intCases, Default: def, P: pos}
}

// parseCaseBody collects statements until the next case/pat/default label
// or the closing brace.
func (p *parser) parseCaseBody() *ast.Block {
	b := &ast.Block{P: p.cur().Pos}
	for !p.at(token.KwCase) && !p.at(token.KwPat) && !p.at(token.KwDefault) &&
		!p.at(token.RBRACE) && !p.at(token.EOF) && len(p.errs) < 10 {
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	return b
}

// ---------------------------------------------------------------- exprs --

// Binary operator precedence, loosest first.
var precLevels = [][]token.Kind{
	{token.LOR},
	{token.LAND},
	{token.PIPE},
	{token.CARET},
	{token.AMP},
	{token.EQ, token.NE},
	{token.LT, token.LE, token.GT, token.GE},
	{token.SHL, token.SHR},
	{token.PLUS, token.MINUS},
	{token.STAR, token.SLASH, token.PERCENT},
}

func (p *parser) parseExpr() ast.Expr { return p.parseBinary(0) }

func (p *parser) parseBinary(level int) ast.Expr {
	if level >= len(precLevels) {
		return p.parseUnary()
	}
	lhs := p.parseBinary(level + 1)
	for {
		matched := false
		for _, k := range precLevels[level] {
			if p.at(k) {
				pos := p.next().Pos
				rhs := p.parseBinary(level + 1)
				lhs = &ast.Binary{Op: k, L: lhs, R: rhs, P: pos}
				matched = true
				break
			}
		}
		if !matched {
			return lhs
		}
	}
}

func (p *parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.MINUS, token.NOT, token.TILDE:
		t := p.next()
		return &ast.Unary{Op: t.Kind, X: p.parseUnary(), P: t.Pos}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	e := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACK:
			pos := p.next().Pos
			idx := p.parseExpr()
			p.expect(token.RBRACK)
			e = &ast.Index{Arr: e, Idx: idx, P: pos}
		case token.QUESTION:
			pos := p.next().Pos
			name := p.expectIdent()
			a := &ast.Attr{X: e, Name: name, P: pos}
			if p.accept(token.LPAREN) {
				if !p.at(token.RPAREN) {
					for {
						a.Args = append(a.Args, p.parseExpr())
						if !p.accept(token.COMMA) {
							break
						}
					}
				}
				p.expect(token.RPAREN)
			}
			e = a
		default:
			return e
		}
	}
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.INT:
		p.next()
		return &ast.IntLit{Val: t.Val, P: t.Pos}
	case token.IDENT:
		p.next()
		if p.at(token.LPAREN) {
			p.next()
			c := &ast.Call{Name: t.Lit, P: t.Pos}
			if !p.at(token.RPAREN) {
				for {
					c.Args = append(c.Args, p.parseExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			return c
		}
		return &ast.Ident{Name: t.Lit, P: t.Pos}
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &ast.IntLit{Val: 0, P: t.Pos}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
