package parser

import (
	"strings"
	"testing"

	"facile/internal/lang/ast"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func parseErr(t *testing.T, src, wantSub string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("expected parse error containing %q", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

func TestTokenDecl(t *testing.T) {
	p := parseOK(t, `token instruction[32] fields op 26:31, rd 21:25;`)
	if len(p.Tokens) != 1 {
		t.Fatal("no token decl")
	}
	tk := p.Tokens[0]
	if tk.Name != "instruction" || tk.Width != 32 || len(tk.Fields) != 2 {
		t.Fatalf("%+v", tk)
	}
	if tk.Fields[1].Name != "rd" || tk.Fields[1].Lo != 21 || tk.Fields[1].Hi != 25 {
		t.Fatalf("%+v", tk.Fields[1])
	}
}

func TestPatDecl(t *testing.T) {
	p := parseOK(t, `
token w[32] fields op 0:5, i 6:6, fill 7:16;
pat add = op == 1 && (i == 1 || fill == 0);
`)
	if len(p.Pats) != 1 || p.Pats[0].Name != "add" {
		t.Fatal("pattern missing")
	}
	b, ok := p.Pats[0].Expr.(*ast.Binary)
	if !ok {
		t.Fatalf("expr %T", p.Pats[0].Expr)
	}
	_ = b
}

func TestValForms(t *testing.T) {
	p := parseOK(t, `
val a;
val b = 42;
val s : stream;
val r = array(32){-1};
val q = queue(8, 4);
`)
	if len(p.Globals) != 5 {
		t.Fatalf("%d globals", len(p.Globals))
	}
	if p.Globals[2].Kind != ast.ValStream {
		t.Fatal("stream kind")
	}
	if p.Globals[3].Kind != ast.ValArray || p.Globals[3].ArrayLen != 32 || p.Globals[3].ArrayInit != -1 {
		t.Fatalf("%+v", p.Globals[3])
	}
	if p.Globals[4].Kind != ast.ValQueue || p.Globals[4].QueueCap != 8 || p.Globals[4].QueueW != 4 {
		t.Fatalf("%+v", p.Globals[4])
	}
}

func TestFunAndQueueParam(t *testing.T) {
	p := parseOK(t, `fun main(q: queue(16, 3), pc) { set_args(q, pc); }`)
	f := p.Fun("main")
	if f == nil || len(f.Params) != 2 {
		t.Fatal("main params")
	}
	if f.Params[0].Kind != ast.ParamQueue || f.Params[0].QueueCap != 16 || f.Params[0].QueueW != 3 {
		t.Fatalf("%+v", f.Params[0])
	}
	if f.Params[1].Kind != ast.ParamInt {
		t.Fatal("second param should be int")
	}
}

func TestStatements(t *testing.T) {
	p := parseOK(t, `
fun main(x) {
    val y = 0;
    while (y < 10) {
        y = y + 1;
        if (y == 5) { continue; }
        if (y == 8) break;
    }
    switch (y) {
      case 1, 2: y = 0;
      case -3: y = 1;
      default: y = 2;
    }
    return y;
}
`)
	body := p.Fun("main").Body.Stmts
	if len(body) != 4 {
		t.Fatalf("%d stmts", len(body))
	}
	sw := body[2].(*ast.Switch)
	if len(sw.Cases) != 2 || sw.Default == nil {
		t.Fatalf("switch %+v", sw)
	}
	if sw.Cases[0].Vals[1] != 2 || sw.Cases[1].Vals[0] != -3 {
		t.Fatalf("case values %+v", sw.Cases)
	}
}

func TestPatternSwitch(t *testing.T) {
	p := parseOK(t, `
token w[32] fields op 0:5;
pat a = op == 0;
pat b = op == 1;
fun main(pc) {
    switch (pc) {
      pat a: pc = pc + 1;
      pat b: { pc = 0; }
      default: ;
    }
    set_args(pc);
}
`)
	ps := p.Fun("main").Body.Stmts[0].(*ast.PatSwitch)
	if len(ps.Cases) != 2 || ps.Default == nil {
		t.Fatalf("%+v", ps)
	}
}

func TestMixedSwitchRejected(t *testing.T) {
	parseErr(t, `
token w[32] fields op 0:5;
pat a = op == 0;
fun main(x) {
    switch (x) {
      case 1: ;
      pat a: ;
    }
}
`, "mixes")
}

func TestAttrParsing(t *testing.T) {
	p := parseOK(t, `
fun main(x) {
    val a = x?sext(15);
    val b = x?pin();
    x?exec();
    val c = q_unchecked?size();
    set_args(a + b + c);
}
`)
	_ = p
}

func TestPrecedence(t *testing.T) {
	p := parseOK(t, `fun main(x) { val y = 1 + 2 * 3 == 7 && 1 | 0; set_args(y); }`)
	decl := p.Fun("main").Body.Stmts[0].(*ast.LocalDecl)
	// top must be && (loosest in this expression)
	b, ok := decl.Decl.Init.(*ast.Binary)
	if !ok {
		t.Fatalf("%T", decl.Decl.Init)
	}
	if b.Op.String() != "&&" {
		t.Fatalf("top op %v", b.Op)
	}
}

func TestErrors(t *testing.T) {
	parseErr(t, `fun main( { }`, "expected")
	parseErr(t, `val = 3;`, "expected identifier")
	parseErr(t, `fun main(x) { 1 + ; }`, "expected expression")
	parseErr(t, `fun main(x) { x + 1 = 2; }`, "invalid assignment target")
}

func TestSemDecl(t *testing.T) {
	p := parseOK(t, `
token w[32] fields op 0:5;
pat a = op == 0;
sem a { };
sem a { val x = 1; x = x + 1; }
`)
	if len(p.Sems) != 2 {
		t.Fatalf("%d sems", len(p.Sems))
	}
}

func TestExternDecl(t *testing.T) {
	p := parseOK(t, `extern foo(3);`)
	if len(p.Externs) != 1 || p.Externs[0].NArgs != 3 {
		t.Fatal("extern")
	}
}
