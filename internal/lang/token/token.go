// Package token defines the lexical tokens of the Facile language.
package token

import "fmt"

// Kind identifies a lexical token class.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT // foo
	INT   // 123, 0x1f, 'a'

	// operators and punctuation
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	SHL      // <<
	SHR      // >>
	LAND     // &&
	LOR      // ||
	NOT      // !
	TILDE    // ~
	EQ       // ==
	NE       // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	ASSIGN   // =
	QUESTION // ? (attribute application e?sext(32))
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :

	// keywords
	KwToken
	KwFields
	KwPat
	KwVal
	KwFun
	KwSem
	KwExtern
	KwIf
	KwElse
	KwWhile
	KwBreak
	KwContinue
	KwReturn
	KwSwitch
	KwCase
	KwDefault
	KwArray
	KwQueue
	KwStream
)

var names = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "identifier", INT: "integer",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%",
	AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	LAND: "&&", LOR: "||", NOT: "!", TILDE: "~",
	EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ASSIGN: "=", QUESTION: "?",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACK: "[", RBRACK: "]", COMMA: ",", SEMI: ";", COLON: ":",
	KwToken: "token", KwFields: "fields", KwPat: "pat", KwVal: "val",
	KwFun: "fun", KwSem: "sem", KwExtern: "extern",
	KwIf: "if", KwElse: "else", KwWhile: "while",
	KwBreak: "break", KwContinue: "continue", KwReturn: "return",
	KwSwitch: "switch", KwCase: "case", KwDefault: "default",
	KwArray: "array", KwQueue: "queue", KwStream: "stream",
}

// String returns a human-readable name for k.
func (k Kind) String() string {
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps identifier spellings to keyword kinds.
var Keywords = map[string]Kind{
	"token": KwToken, "fields": KwFields, "pat": KwPat, "val": KwVal,
	"fun": KwFun, "sem": KwSem, "extern": KwExtern,
	"if": KwIf, "else": KwElse, "while": KwWhile,
	"break": KwBreak, "continue": KwContinue, "return": KwReturn,
	"switch": KwSwitch, "case": KwCase, "default": KwDefault,
	"array": KwArray, "queue": KwQueue, "stream": KwStream,
}

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// String formats the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT/INT
	Val  int64  // value for INT
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}
