// Package ir defines the intermediate representation the Facile compiler
// lowers programs into, and which the fast-forwarding runtime interprets.
//
// The IR is a control-flow graph of basic blocks over virtual registers.
// After binding-time analysis every instruction carries a binding time:
// run-time static instructions are executed only by the slow simulator
// (and skipped entirely during replay); dynamic instructions form the
// actions stored in the specialized action cache. For each block the
// compiler precomputes the block's dynamic segment — the dynamic
// instructions with each operand classified as a dynamic virtual register,
// a run-time static placeholder (recorded in the cache per execution), or
// a constant — which is exactly what the fast simulator executes.
package ir

import (
	"fmt"
	"strings"

	"facile/internal/lang/token"
)

// Op is an IR opcode.
type Op uint8

// IR opcodes.
const (
	Const   Op = iota // d = Imm
	Mov               // d = a
	Bin               // d = a <Sub> b
	Un                // d = <Sub> a
	Ext               // d = sign/zero extend a to Imm bits (Sub: 0 zext, 1 sext)
	LoadG             // d = globals[Imm]
	StoreG            // globals[Imm] = a
	LoadA             // d = arrays[Imm][a]
	StoreA            // arrays[Imm][a] = b
	Fetch             // d = target text word at address a (rt-static text)
	QOp               // queue operation Sub on queue QID; d = result
	CallExt           // d = externs[Imm](Args...)
	SetArg            // next-step argument Imm = a (queue params: no-op marker)
	Pin               // d = a, pinning a dynamic value rt-static via a dynamic result test
	// terminators
	Jmp // goto Succ[0]
	Br  // if a != 0 goto Succ[0] else Succ[1]
	Ret
)

// Queue operation sub-codes (Sub field of QOp).
const (
	QSize uint8 = iota
	QPush       // Args = one value per tuple field
	QPop
	QGet   // a = entry index, b = field index
	QSet   // a = entry index, b = field index, Args[0] = value
	QFront // a = field index
	QFull
	QClear
)

// Binding times.
const (
	BTStatic   byte = 0 // run-time static
	BTDynamic  byte = 1
	BTStaticWT byte = 2 // rt-static global store, written through to the
	// runtime global store during replay (the paper's "rt-static value
	// becomes dynamic" materialization)
)

// Inst is one IR instruction.
type Inst struct {
	Op   Op
	Sub  uint8     // Bin: token.Kind operator; Un: operator; Ext: 1=sext; QOp: QOp code
	D    int32     // destination vreg, -1 if none
	A, B int32     // operand vregs, -1 if unused
	Imm  int64     // constant / global index / array index / extern index / arg index / ext bits
	QID  int32     // QOp: >= 0 global queue index; < 0: main queue param ^QID
	Args []int32   // QPush values / CallExt arguments
	BT   byte      // binding time, filled by BTA
	Pos  token.Pos // source position for diagnostics
}

// Block is a basic block.
type Block struct {
	ID    int
	Insts []Inst
	Term  Inst
	Succ  [2]int // Jmp: [0]; Br: [0] then-target, [1] else-target

	// Filled by binding-time analysis / action extraction:
	HasDyn  bool      // block contains dynamic instructions or a dynamic term
	Dyn     []DynInst // the dynamic segment replayed by the fast simulator
	DynTerm DynTermKind
	TermSrc Src   // dyn Br: condition; dyn SetArg/Pin term: value
	ArgIdx  int   // dyn SetArg term: which main argument
	PinDst  int32 // dyn Pin term: rt-static destination vreg
	NPh     int   // number of placeholder values recorded per execution
}

// Terminated reports whether the block already has a terminator.
func (b *Block) Terminated() bool {
	switch b.Term.Op {
	case Jmp, Br, Ret:
		return true
	}
	return false
}

// DynTermKind classifies how a block's dynamic segment ends.
type DynTermKind uint8

// Dynamic terminator kinds.
const (
	DTNone   DynTermKind = iota // rt-static control flow follows
	DTBr                        // dynamic-result test on a branch condition
	DTSetArg                    // dynamic-result test pinning a next-step argument
	DTPin                       // dynamic-result test pinning a value (?pin)
	DTRet                       // step ends (next key is assembled)
)

// SrcKind classifies a dynamic instruction operand.
type SrcKind uint8

// Operand classes.
const (
	SrcNone  SrcKind = iota
	SrcVReg          // dynamic virtual register
	SrcPh            // run-time static placeholder, recorded per execution
	SrcConst         // compile-time constant
)

// Src is a classified operand of a dynamic instruction.
type Src struct {
	Kind  SrcKind
	VReg  int32
	Const int64
}

// DynInst is one dynamic instruction as replayed by the fast simulator.
type DynInst struct {
	Op   Op
	Sub  uint8
	D    int32
	A, B Src
	Imm  int64
	QID  int32
	Args []Src
	Pos  token.Pos // source position, for replay-plan diagnostics
}

// GlobalDecl describes a global scalar (or stream).
type GlobalDecl struct {
	Name string
	Init int64
}

// ArrayDecl describes a global array.
type ArrayDecl struct {
	Name string
	Len  int
	Init int64
}

// QueueDecl describes a queue (global, or a main parameter).
type QueueDecl struct {
	Name  string
	Cap   int
	Width int
}

// ParamDecl describes one main parameter.
type ParamDecl struct {
	Name    string
	IsQueue bool
	Queue   QueueDecl // when IsQueue
}

// VRegName records the source-level binding a virtual register was
// created for, so diagnostics can speak in the programmer's vocabulary.
// Inlining duplicates bindings (fresh vregs per call site), so several
// vregs may share one (Name, Pos) pair.
type VRegName struct {
	Name string
	Kind string // "param", "local", or "field"
	Pos  token.Pos
}

// Program is a compiled Facile program.
type Program struct {
	Blocks  []*Block
	Entry   int
	NumVReg int

	Globals []GlobalDecl
	Arrays  []ArrayDecl
	QueuesG []QueueDecl
	Externs []string
	Params  []ParamDecl

	// VRegNames maps vregs to the source bindings they were created for
	// (params, locals, decoded fields). Compiler temporaries are absent.
	VRegNames map[int32]VRegName

	// Replay is the proven fusion/replay plan (see replay.go), attached by
	// the compiler after action extraction. Nil for hand-constructed IR;
	// engines then fall back to their own per-block layout proof.
	Replay *ReplayPlan

	// Stats from compilation, reported by the driver.
	NumStatic  int // instructions classified run-time static
	NumDynamic int
}

var binNames = map[uint8]string{
	uint8(token.PLUS): "+", uint8(token.MINUS): "-", uint8(token.STAR): "*",
	uint8(token.SLASH): "/", uint8(token.PERCENT): "%",
	uint8(token.AMP): "&", uint8(token.PIPE): "|", uint8(token.CARET): "^",
	uint8(token.SHL): "<<", uint8(token.SHR): ">>",
	uint8(token.EQ): "==", uint8(token.NE): "!=",
	uint8(token.LT): "<", uint8(token.LE): "<=",
	uint8(token.GT): ">", uint8(token.GE): ">=",
}

// String renders an instruction for dumps and tests.
func (in Inst) String() string {
	bt := "S"
	if in.BT == BTDynamic {
		bt = "D"
	}
	switch in.Op {
	case Const:
		return fmt.Sprintf("[%s] v%d = %d", bt, in.D, in.Imm)
	case Mov:
		return fmt.Sprintf("[%s] v%d = v%d", bt, in.D, in.A)
	case Bin:
		return fmt.Sprintf("[%s] v%d = v%d %s v%d", bt, in.D, in.A, binNames[in.Sub], in.B)
	case Un:
		return fmt.Sprintf("[%s] v%d = un%d v%d", bt, in.D, in.Sub, in.A)
	case Ext:
		k := "zext"
		if in.Sub == 1 {
			k = "sext"
		}
		return fmt.Sprintf("[%s] v%d = %s(v%d, %d)", bt, in.D, k, in.A, in.Imm)
	case LoadG:
		return fmt.Sprintf("[%s] v%d = g%d", bt, in.D, in.Imm)
	case StoreG:
		return fmt.Sprintf("[%s] g%d = v%d", bt, in.Imm, in.A)
	case LoadA:
		return fmt.Sprintf("[%s] v%d = arr%d[v%d]", bt, in.D, in.Imm, in.A)
	case StoreA:
		return fmt.Sprintf("[%s] arr%d[v%d] = v%d", bt, in.Imm, in.A, in.B)
	case Fetch:
		return fmt.Sprintf("[%s] v%d = fetch(v%d)", bt, in.D, in.A)
	case QOp:
		return fmt.Sprintf("[%s] v%d = q%d.op%d(v%d, v%d, %v)", bt, in.D, in.QID, in.Sub, in.A, in.B, in.Args)
	case CallExt:
		return fmt.Sprintf("[%s] v%d = ext%d(%v)", bt, in.D, in.Imm, in.Args)
	case SetArg:
		return fmt.Sprintf("[%s] arg%d = v%d", bt, in.Imm, in.A)
	case Pin:
		return fmt.Sprintf("[%s] v%d = pin(v%d)", bt, in.D, in.A)
	case Jmp:
		return fmt.Sprintf("[%s] jmp", bt)
	case Br:
		return fmt.Sprintf("[%s] br v%d", bt, in.A)
	case Ret:
		return fmt.Sprintf("[%s] ret", bt)
	}
	return fmt.Sprintf("[%s] op%d", bt, in.Op)
}

// Dump renders the whole program for debugging.
func (p *Program) Dump() string {
	var b strings.Builder
	for _, blk := range p.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if blk.HasDyn {
			fmt.Fprintf(&b, " (dyn, %d ph)", blk.NPh)
		}
		b.WriteString("\n")
		for _, in := range blk.Insts {
			fmt.Fprintf(&b, "  %s\n", in)
		}
		fmt.Fprintf(&b, "  %s -> %v\n", blk.Term, blk.Succ)
	}
	return b.String()
}
