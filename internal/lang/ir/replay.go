package ir

// This file defines the compile-time replay/fusion plan: the static table
// the compiler proves once per program and the replay engine consults at
// machine-build time instead of re-deriving per block. It is the static
// counterpart of rt's superinstruction builder — see compile's replay
// analysis for how the verdicts are computed.

// Fuse limits shared by the static planner and the replay engines: a
// superinstruction's node count is capped at MaxFuseLen, and runs shorter
// than MinFuseLen are not worth fused dispatch.
const (
	MaxFuseLen = 1024
	MinFuseLen = 2
)

// ReplayClass classifies one block's role in a recorded action chain.
type ReplayClass uint8

// Replay classes, mirroring the DynTermKind taxonomy at action level.
const (
	// ReplayNoDyn: the block has no dynamic segment; it is never recorded
	// as an action and replay skips it entirely.
	ReplayNoDyn ReplayClass = iota
	// ReplayPure: pure-flow — the dynamic segment ends with rt-static
	// control flow (DTNone). Pure-flow actions advance unconditionally,
	// can never miss, and are the only actions eligible for fusion.
	ReplayPure
	// ReplayFork: the segment ends in a dynamic-result test (DTBr,
	// DTSetArg, or DTPin). Forks can miss mid-step and always terminate a
	// fused run.
	ReplayFork
	// ReplayRet: the segment ends the step (DTRet); the next memoization
	// key is assembled here.
	ReplayRet
)

// String implements fmt.Stringer.
func (c ReplayClass) String() string {
	switch c {
	case ReplayPure:
		return "pure-flow"
	case ReplayFork:
		return "fork"
	case ReplayRet:
		return "step-end"
	}
	return "no-dyn"
}

// BlockReplay is the proven per-block replay verdict.
type BlockReplay struct {
	Class ReplayClass

	// LayoutOK reports that the block's placeholder layout is proven to
	// match the recorder's append order (every SrcPh operand sits in a
	// field the replayer reads, and the count equals NPh), so specialized
	// closures may consume recorded data without re-validating it.
	LayoutOK bool

	// MaxRun is the length (in actions) of the longest pure-flow run a
	// replay chain can thread through this block, capped at the fuse
	// bound. Zero for blocks that can never join a run.
	MaxRun int

	// DynOps is the number of dynamic instructions in the block's segment.
	DynOps int
}

// ReplayPlan is the whole-program fusion/replay table attached to a
// compiled Program. Engines treat it as proven: a nil plan (hand-built IR,
// older snapshots) falls back to the engine's own per-block proof.
type ReplayPlan struct {
	Blocks []BlockReplay

	// Aggregates over blocks with a dynamic segment.
	DynBlocks     int // blocks recorded as actions (HasDyn)
	FusableBlocks int // pure-flow blocks with a proven layout
	DynOps        int // dynamic instructions across all segments
	FusableOps    int // dynamic instructions inside fusable blocks
}

// Fusable reports whether block bi may be compiled into a superinstruction
// without re-proving its operand layout.
func (pl *ReplayPlan) Fusable(bi int) bool {
	if pl == nil || bi < 0 || bi >= len(pl.Blocks) {
		return false
	}
	b := &pl.Blocks[bi]
	return b.Class == ReplayPure && b.LayoutOK
}

// Coverage is the predicted fusion coverage: the fraction of dynamic
// instructions that live in fusable pure-flow blocks (0..1; 0 when the
// program has no dynamic work).
func (pl *ReplayPlan) Coverage() float64 {
	if pl == nil || pl.DynOps == 0 {
		return 0
	}
	return float64(pl.FusableOps) / float64(pl.DynOps)
}
