package compile

import (
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// CauseKind classifies why a value first became dynamic.
type CauseKind uint8

// Cause kinds.
const (
	CauseNone   CauseKind = iota
	CauseVReg             // copied or computed from a dynamic vreg
	CauseGlobal           // loaded from a global that was dynamic at that point
	CauseArray            // array element load (array state is dynamic)
	CauseExtern           // external call result
	CauseQueue            // global queue operation (global queues are dynamic)
)

// Cause is one edge of a binding-time provenance chain: the instruction
// that first raised a value to dynamic, and what it read to do so.
type Cause struct {
	Kind CauseKind
	Pos  token.Pos // position of the raising instruction
	From int32     // CauseVReg: source vreg; otherwise the global/array/extern/queue index
}

// Transition records one lattice raise of a vreg's binding time. The
// analysis is monotone, so From < To for every recorded transition and
// each vreg's transition sequence is non-decreasing — tests assert this.
type Transition struct {
	VReg     int32
	From, To byte
	Pos      token.Pos
}

// QueueViolation is one use of a dynamic value with a run-time static
// queue. The compiler reports only the first as its error; the full list
// feeds diagnostics.
type QueueViolation struct {
	Pos token.Pos
	Msg string
}

// Facts is the binding-time evidence collected during analysis, consumed
// by the fvet provenance and cost analyzers. All slices are indexed like
// their Program counterparts (vreg, global index).
type Facts struct {
	VRegBT    []byte  // final vreg binding times
	VRegCause []Cause // first cause per dynamic vreg (CauseNone if static)

	GlobalDynStore    []Cause     // first dynamic store per global (CauseNone if never)
	GlobalStaticStore []token.Pos // first rt-static store per global (zero if never)
	DynRead           []bool      // global ever read while dynamic (write-throughs must survive)

	Transitions     []Transition // every lattice raise, in analysis order
	QueueViolations []QueueViolation

	// Replay is the fusion/replay evidence behind the program's proven
	// plan (see replay.go), consumed by the fvet fusion analyzers.
	Replay *ReplayEvidence
}

// CompileWithFacts is Compile plus the binding-time evidence the vet
// analyzers need. On a binding-time error (queue violation) the program
// and facts are still returned fully analyzed so diagnostics can point at
// every violating site, not just the first.
func CompileWithFacts(c *types.Checked, opt Options) (*ir.Program, *Facts, error) {
	lw := &lowerer{c: c, p: &ir.Program{}}
	lw.declare()
	if err := lw.lowerMain(); err != nil {
		return nil, nil, err
	}
	if !opt.NoOptimize {
		optimize(lw.p)
	}
	facts := &Facts{}
	err := analyzeFacts(lw.p, c, opt, facts)
	lw.p.Replay, facts.Replay = buildReplayPlan(lw.p)
	return lw.p, facts, err
}
