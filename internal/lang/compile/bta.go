package compile

import (
	"fmt"

	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// analyze runs binding-time analysis over the lowered program, marks every
// instruction rt-static or dynamic, and extracts the per-block dynamic
// segments (the actions).
//
// The analysis is the paper's §4.1 abstract interpretation: a forward
// dataflow over the lattice rt-static < dynamic. Global scalars are
// tracked flow-sensitively (a global assigned a run-time static value is
// rt-static from that point until re-assigned dynamic, per §4.1); virtual
// registers are tracked flow-insensitively — a register with any dynamic
// definition is dynamic everywhere. Binding times only increase, both
// variable sets are finite, so the fixpoint terminates (the paper's
// termination argument).
//
// Whenever a run-time static value can be observed by dynamic code — a
// static store to a dynamically-read global, or a static definition of a
// dynamic vreg — the instruction is reclassified as a *write-through*
// (BTStaticWT): the slow simulator memoizes the computed value as
// placeholder data and the fast simulator re-applies it during replay.
// This is exactly the paper's "extra data written into the specialized
// action cache whenever a run-time static value becomes dynamic" (§6.3),
// and the LiftLiveOnly option implements the liveness optimization that
// elides write-throughs no dynamic reader can observe.
func analyze(p *ir.Program, c *types.Checked, opt Options) error {
	return analyzeFacts(p, c, opt, nil)
}

// analyzeFacts is analyze with optional evidence collection (facts may be
// nil). When facts are requested, every lattice raise, first-cause edge,
// and queue violation is recorded for the vet analyzers.
func analyzeFacts(p *ir.Program, c *types.Checked, opt Options, facts *Facts) error {
	nv := p.NumVReg
	ng := len(p.Globals)

	vbt := make([]byte, nv) // flow-insensitive vreg binding times
	// in-state per block: global binding times; nil = unvisited.
	in := make([][]byte, len(p.Blocks))
	entry := make([]byte, ng)
	for g := 0; g < ng; g++ {
		entry[g] = ir.BTDynamic // globals are dynamic at step entry
	}
	in[p.Entry] = entry

	if facts != nil {
		facts.VRegCause = make([]Cause, nv)
		facts.GlobalDynStore = make([]Cause, ng)
		facts.GlobalStaticStore = make([]token.Pos, ng)
	}

	// Queue violations: the compiler's error is the first one, but all of
	// them are collected (deduplicated — the fixpoint revisits blocks) so
	// diagnostics can point at every site.
	var violations []QueueViolation
	vseen := map[QueueViolation]bool{}
	violate := func(pos token.Pos, msg string) {
		v := QueueViolation{Pos: pos, Msg: msg}
		if vseen[v] {
			return
		}
		vseen[v] = true
		violations = append(violations, v)
	}

	bt := func(v int32) byte {
		if v < 0 {
			return ir.BTStatic
		}
		return vbt[v]
	}
	// setv raises vreg d to binding time b, recording the transition and
	// (on the first raise to dynamic) the cause edge.
	setv := func(d int32, b byte, cause Cause) bool {
		if d >= 0 && vbt[d] < b {
			if facts != nil {
				facts.Transitions = append(facts.Transitions,
					Transition{VReg: d, From: vbt[d], To: b, Pos: cause.Pos})
				if b == ir.BTDynamic && facts.VRegCause[d].Kind == CauseNone {
					facts.VRegCause[d] = cause
				}
			}
			vbt[d] = b
			return true
		}
		return false
	}

	// transferOne applies one instruction; reports whether any vreg
	// binding time increased.
	transferOne := func(inst *ir.Inst, gst []byte) bool {
		switch inst.Op {
		case ir.Const:
			return false // constants are rt-static; dest stays as-is
		case ir.Mov, ir.Un, ir.Ext, ir.Fetch, ir.Pin:
			if inst.Op == ir.Pin {
				return false // pinned results are rt-static by definition
			}
			return setv(inst.D, bt(inst.A), Cause{Kind: CauseVReg, Pos: inst.Pos, From: inst.A})
		case ir.Bin:
			b := bt(inst.A)
			from := inst.A
			if bb := bt(inst.B); bb > b {
				b = bb
				from = inst.B
			}
			return setv(inst.D, b, Cause{Kind: CauseVReg, Pos: inst.Pos, From: from})
		case ir.LoadG:
			return setv(inst.D, gst[inst.Imm],
				Cause{Kind: CauseGlobal, Pos: inst.Pos, From: int32(inst.Imm)})
		case ir.StoreG:
			if facts != nil {
				if bt(inst.A) == ir.BTDynamic {
					if facts.GlobalDynStore[inst.Imm].Kind == CauseNone {
						facts.GlobalDynStore[inst.Imm] = Cause{Kind: CauseVReg, Pos: inst.Pos, From: inst.A}
					}
				} else if facts.GlobalStaticStore[inst.Imm].Line == 0 {
					facts.GlobalStaticStore[inst.Imm] = inst.Pos
				}
			}
			gst[inst.Imm] = bt(inst.A)
			return false
		case ir.LoadA:
			return setv(inst.D, ir.BTDynamic,
				Cause{Kind: CauseArray, Pos: inst.Pos, From: int32(inst.Imm)})
		case ir.CallExt:
			return setv(inst.D, ir.BTDynamic,
				Cause{Kind: CauseExtern, Pos: inst.Pos, From: int32(inst.Imm)})
		case ir.QOp:
			if inst.QID < 0 {
				if bt(inst.A) == ir.BTDynamic || bt(inst.B) == ir.BTDynamic {
					violate(inst.Pos, "dynamic value used to address a run-time static queue")
				}
				for _, a := range inst.Args {
					if bt(a) == ir.BTDynamic {
						violate(inst.Pos, "cannot store a dynamic value into a run-time static queue; route dynamic data through global state")
					}
				}
				return setv(inst.D, ir.BTStatic, Cause{})
			}
			return setv(inst.D, ir.BTDynamic,
				Cause{Kind: CauseQueue, Pos: inst.Pos, From: inst.QID})
		}
		return false
	}

	// Fixpoint: iterate the global-state dataflow; whenever a vreg binding
	// time rises, run another full round (vreg states feed global
	// transfers and vice versa; everything is monotone).
	for {
		vchanged := false
		work := make([]int, 0, len(p.Blocks))
		inWork := make([]bool, len(p.Blocks))
		for id := range p.Blocks {
			if in[id] != nil {
				work = append(work, id)
				inWork[id] = true
			}
		}
		for len(work) > 0 {
			id := work[0]
			work = work[1:]
			inWork[id] = false
			b := p.Blocks[id]
			gst := make([]byte, ng)
			copy(gst, in[id])
			for i := range b.Insts {
				if transferOne(&b.Insts[i], gst) {
					vchanged = true
				}
			}
			for _, s := range b.Succ {
				if s < 0 {
					continue
				}
				changed := false
				if in[s] == nil {
					in[s] = make([]byte, ng)
					copy(in[s], gst)
					changed = true
				} else {
					for g := 0; g < ng; g++ {
						if gst[g] == ir.BTDynamic && in[s][g] != ir.BTDynamic {
							in[s][g] = ir.BTDynamic
							changed = true
						}
					}
				}
				if changed && !inWork[s] {
					work = append(work, s)
					inWork[s] = true
				}
			}
		}
		if !vchanged {
			break
		}
	}

	// Marking pass A: classify instructions and find globals that are ever
	// read by dynamic code (their rt-static stores must write through).
	dynRead := make([]bool, ng)
	classify := func(b *ir.Block) {
		gst := make([]byte, ng)
		copy(gst, in[b.ID])
		for i := range b.Insts {
			inst := &b.Insts[i]
			var dyn bool
			switch inst.Op {
			case ir.Const:
				dyn = vbt[inst.D] == ir.BTDynamic // materialized constant
			case ir.Mov, ir.Un, ir.Ext, ir.Fetch:
				dyn = bt(inst.A) == ir.BTDynamic
			case ir.Bin:
				dyn = bt(inst.A) == ir.BTDynamic || bt(inst.B) == ir.BTDynamic
			case ir.LoadG:
				dyn = gst[inst.Imm] == ir.BTDynamic
				if dyn {
					dynRead[inst.Imm] = true
				}
			case ir.StoreG:
				dyn = bt(inst.A) == ir.BTDynamic
			case ir.LoadA, ir.StoreA, ir.CallExt:
				dyn = true
			case ir.QOp:
				dyn = inst.QID >= 0
			case ir.SetArg, ir.Pin:
				dyn = bt(inst.A) == ir.BTDynamic
			}
			if dyn {
				inst.BT = ir.BTDynamic
				p.NumDynamic++
			} else {
				inst.BT = ir.BTStatic
				p.NumStatic++
			}
			transferOne(inst, gst)
		}
		if b.Term.Op == ir.Br {
			if bt(b.Term.A) == ir.BTDynamic {
				b.Term.BT = ir.BTDynamic
				p.NumDynamic++
			} else {
				b.Term.BT = ir.BTStatic
				p.NumStatic++
			}
		}
	}
	for _, b := range p.Blocks {
		if in[b.ID] == nil {
			continue // unreachable
		}
		classify(b)
	}

	// Marking pass B: build dynamic segments. Rules:
	//   - dynamic instructions execute during replay, reading dynamic
	//     vregs, recorded placeholders (rt-static operands), or constants;
	//   - rt-static instructions whose destination vreg is dynamic are
	//     write-throughs: the slow simulator records the computed value,
	//     the fast simulator re-applies it (Mov dest <- placeholder);
	//   - rt-static stores to dynamically-read globals write through the
	//     stored value the same way.
	for _, b := range p.Blocks {
		if in[b.ID] == nil {
			continue
		}
		consts := map[int32]int64{} // vreg -> known constant within block
		src := func(v int32) ir.Src {
			if v < 0 {
				return ir.Src{Kind: ir.SrcNone}
			}
			if vbt[v] == ir.BTDynamic {
				return ir.Src{Kind: ir.SrcVReg, VReg: v}
			}
			if cv, ok := consts[v]; ok {
				return ir.Src{Kind: ir.SrcConst, Const: cv}
			}
			return ir.Src{Kind: ir.SrcPh, VReg: v}
		}
		countPh := func(ss ...ir.Src) {
			for _, s := range ss {
				if s.Kind == ir.SrcPh {
					b.NPh++
				}
			}
		}
		b.Dyn = nil
		b.NPh = 0
		b.DynTerm = ir.DTNone
		for i := range b.Insts {
			inst := &b.Insts[i]
			if inst.BT == ir.BTStatic {
				switch {
				case inst.Op == ir.StoreG && (!opt.LiftLiveOnly || dynRead[inst.Imm]):
					// rt-static global store: write through the value
					inst.BT = ir.BTStaticWT
					di := ir.DynInst{Op: ir.StoreG, Imm: inst.Imm,
						A: ir.Src{Kind: ir.SrcPh, VReg: inst.A}, Pos: inst.Pos}
					if inst.A < 0 {
						di.A = ir.Src{Kind: ir.SrcConst}
					}
					b.NPh++
					b.Dyn = append(b.Dyn, di)
				case inst.Op != ir.StoreG && inst.Op != ir.SetArg && inst.Op != ir.Pin &&
					inst.D >= 0 && vbt[inst.D] == ir.BTDynamic:
					// rt-static value flowing into a dynamic vreg:
					// materialize the result for the fast simulator
					inst.BT = ir.BTStaticWT
					b.NPh++
					b.Dyn = append(b.Dyn, ir.DynInst{Op: ir.Mov, D: inst.D,
						A: ir.Src{Kind: ir.SrcPh, VReg: inst.D}, Pos: inst.Pos})
				case inst.Op == ir.Const:
					consts[inst.D] = inst.Imm
				}
				if inst.BT == ir.BTStatic {
					// Track constants through rt-static moves for
					// placeholder folding.
					if inst.Op == ir.Mov {
						if cv, ok := consts[inst.A]; ok {
							consts[inst.D] = cv
						} else {
							delete(consts, inst.D)
						}
					} else if inst.D >= 0 && inst.Op != ir.Const {
						delete(consts, inst.D)
					}
					continue
				}
				if inst.D >= 0 {
					delete(consts, inst.D)
				}
				continue
			}
			// dynamic instructions
			if inst.D >= 0 {
				delete(consts, inst.D)
			}
			switch inst.Op {
			case ir.SetArg:
				// block-final by construction: a dynamic-result test
				// pinning the next key component
				b.DynTerm = ir.DTSetArg
				b.ArgIdx = int(inst.Imm)
				b.TermSrc = src(inst.A)
			case ir.Pin:
				b.DynTerm = ir.DTPin
				b.PinDst = inst.D
				b.TermSrc = src(inst.A)
			default:
				di := ir.DynInst{Op: inst.Op, Sub: inst.Sub, D: inst.D, Imm: inst.Imm, QID: inst.QID, Pos: inst.Pos}
				// Classify exactly the operands each op reads; unused
				// operand fields are zero-valued, not vreg 0.
				switch inst.Op {
				case ir.Const:
					di.A = ir.Src{Kind: ir.SrcConst, Const: inst.Imm}
					di.Op = ir.Mov
				case ir.Mov, ir.Un, ir.Ext, ir.Fetch, ir.LoadA, ir.StoreG:
					di.A = src(inst.A)
				case ir.Bin, ir.StoreA:
					di.A = src(inst.A)
					di.B = src(inst.B)
				case ir.QOp:
					switch inst.Sub {
					case ir.QGet, ir.QSet:
						di.A = src(inst.A)
						di.B = src(inst.B)
					case ir.QFront:
						di.A = src(inst.A)
					}
				}
				for _, a := range inst.Args {
					di.Args = append(di.Args, src(a))
				}
				countPh(di.A, di.B)
				countPh(di.Args...)
				b.Dyn = append(b.Dyn, di)
			}
		}
		switch b.Term.Op {
		case ir.Br:
			if b.Term.BT == ir.BTDynamic {
				if b.DynTerm == ir.DTSetArg || b.DynTerm == ir.DTPin {
					return &Error{Pos: b.Term.Pos, Msg: "internal: dynamic-result block also ends in a dynamic branch"}
				}
				b.DynTerm = ir.DTBr
				b.TermSrc = ir.Src{Kind: ir.SrcVReg, VReg: b.Term.A}
			}
		case ir.Ret:
			if b.DynTerm != ir.DTNone {
				return &Error{Pos: b.Term.Pos, Msg: "internal: dynamic-result block ends in Ret"}
			}
			b.DynTerm = ir.DTRet
		}
		b.HasDyn = len(b.Dyn) > 0 || b.DynTerm != ir.DTNone
	}
	if facts != nil {
		facts.VRegBT = append([]byte(nil), vbt...)
		facts.DynRead = dynRead
		facts.QueueViolations = violations
	}
	if len(violations) > 0 {
		// Same contract as before facts existed: the compile error is the
		// first violation encountered; the rest live in the facts.
		return &Error{Pos: violations[0].Pos, Msg: violations[0].Msg}
	}
	return nil
}

// DumpBTA renders a binding-time summary for tests and the compiler driver.
func DumpBTA(p *ir.Program) string {
	return fmt.Sprintf("static=%d dynamic=%d blocks=%d vregs=%d",
		p.NumStatic, p.NumDynamic, len(p.Blocks), p.NumVReg)
}
