package compile

import (
	"fmt"

	"facile/internal/lang/ir"
	"facile/internal/lang/token"
)

// This file is the whole-program fusion/replay dataflow tier: a static,
// compile-time computation of everything the replay engine's
// superinstruction builder used to discover at machine-build time.
//
// For every block it proves
//
//   - the action class (pure-flow / fork / step-end), from the dynamic
//     terminator the BTA extracted;
//
//   - the placeholder-layout verdict: whether every recorded placeholder
//     sits in an operand field the replayer reads, in the recorder's
//     append order, with the total matching NPh — the exact conditions
//     rt's closure compiler checks per block, proven here once so the
//     engine can trust the table instead of re-deriving it;
//
//   - the maximal pure-flow run threading through the block: the static
//     upper bound on the superinstruction a replay chain can form here,
//     computed over the dynamic-successor graph (the first blocks with
//     dynamic segments reachable along rt-static control flow).
//
// The verdicts ride on the Program as ir.ReplayPlan (consumed by rt); the
// richer evidence — why-unfusable cause chains, successor edges, loop
// membership — feeds the fvet FV07xx analyzers.

// LayoutCauseKind classifies one reason a block's placeholder layout
// cannot be proven against the recorder's append order.
type LayoutCauseKind uint8

// Layout cause kinds.
const (
	// LayoutPhUnread: a placeholder operand sits in a field the replayer
	// never reads; the recorder still appends it, so every later
	// placeholder index would shift.
	LayoutPhUnread LayoutCauseKind = iota
	// LayoutPhCount: the compile-time placeholder assignment disagrees
	// with the recorder's per-execution count (block NPh).
	LayoutPhCount
	// LayoutBadInst: the dynamic instruction is structurally malformed
	// (e.g. a queue set with no value operand).
	LayoutBadInst
)

// LayoutCause is one edge of a why-unfusable chain.
type LayoutCause struct {
	Kind  LayoutCauseKind
	Pos   token.Pos // offending dynamic instruction
	Op    ir.Op
	Field string // operand field holding the stray placeholder
	Want  int    // LayoutPhCount: recorder's NPh
	Got   int    // LayoutPhCount: compile-time assignment
}

// String renders the cause for diagnostics.
func (c LayoutCause) String() string {
	switch c.Kind {
	case LayoutPhUnread:
		return fmt.Sprintf("placeholder recorded in operand field %s of op %d, which the replayer never reads", c.Field, c.Op)
	case LayoutPhCount:
		return fmt.Sprintf("compile-time placeholder assignment (%d) disagrees with the recorder's per-execution count (%d)", c.Got, c.Want)
	}
	return fmt.Sprintf("malformed dynamic instruction (op %d)", c.Op)
}

// BlockReplayEvidence is the per-block evidence behind a plan verdict.
type BlockReplayEvidence struct {
	Causes []LayoutCause // why the layout is unprovable (empty when OK)
	Succ   []int         // dynamic-successor blocks (first HasDyn blocks downstream)
	Hot    bool          // block sits inside a CFG cycle (statically hot)
}

// ReplayEvidence pairs the proven plan with its per-block evidence for
// the fvet fusion analyzers.
type ReplayEvidence struct {
	Plan   *ir.ReplayPlan
	Blocks []BlockReplayEvidence
}

// readSet describes which operand fields of a dynamic instruction the
// replayer reads; placeholders anywhere else break the recorded layout.
type readSet struct {
	a, b bool
	args int // number of leading Args entries read (-1 = all)
}

// dynReads mirrors the replay interpreter's operand read order (and rt's
// closure compiler's acceptance rules) exactly: for each op, the fields a
// recorded placeholder may legally occupy. ok=false marks a structurally
// malformed instruction.
func dynReads(di *ir.DynInst) (rs readSet, ok bool) {
	switch di.Op {
	case ir.Mov, ir.Un, ir.Ext, ir.StoreG, ir.LoadA, ir.Fetch:
		return readSet{a: true}, true
	case ir.Bin, ir.StoreA:
		return readSet{a: true, b: true}, true
	case ir.LoadG:
		return readSet{}, true
	case ir.QOp:
		switch di.Sub {
		case ir.QSize, ir.QPop, ir.QFull, ir.QClear:
			return readSet{}, true
		case ir.QPush:
			return readSet{args: -1}, true
		case ir.QGet:
			return readSet{a: true, b: true}, true
		case ir.QSet:
			if len(di.Args) < 1 {
				return readSet{}, false
			}
			return readSet{a: true, b: true, args: 1}, true
		case ir.QFront:
			return readSet{a: true}, true
		}
		// Unknown queue sub-op: the replayer computes res=0 reading nothing.
		return readSet{}, true
	case ir.CallExt:
		return readSet{args: -1}, true
	}
	// Unknown dynamic op: the replayer ignores it; no placeholder may hide
	// in it.
	return readSet{}, true
}

// proveLayout runs the compile-time version of the engine's per-block
// placeholder-layout proof: every SrcPh must occupy a read field (so the
// compile-time index assignment, which walks read fields in the
// interpreter's order, matches the recorder's append order), and the
// total must equal the recorder's NPh.
func proveLayout(blk *ir.Block) (ok bool, causes []LayoutCause) {
	ph := 0
	for i := range blk.Dyn {
		di := &blk.Dyn[i]
		rs, wellFormed := dynReads(di)
		if !wellFormed {
			causes = append(causes, LayoutCause{Kind: LayoutBadInst, Pos: di.Pos, Op: di.Op})
			continue
		}
		isPh := func(s ir.Src) bool { return s.Kind == ir.SrcPh }
		if isPh(di.A) {
			if rs.a {
				ph++
			} else {
				causes = append(causes, LayoutCause{Kind: LayoutPhUnread, Pos: di.Pos, Op: di.Op, Field: "A"})
			}
		}
		if isPh(di.B) {
			if rs.b {
				ph++
			} else {
				causes = append(causes, LayoutCause{Kind: LayoutPhUnread, Pos: di.Pos, Op: di.Op, Field: "B"})
			}
		}
		for ai, a := range di.Args {
			if !isPh(a) {
				continue
			}
			if rs.args == -1 || ai < rs.args {
				ph++
			} else {
				causes = append(causes, LayoutCause{Kind: LayoutPhUnread, Pos: di.Pos, Op: di.Op,
					Field: fmt.Sprintf("Args[%d]", ai)})
			}
		}
	}
	if len(causes) == 0 && ph != blk.NPh {
		pos := token.Pos{}
		if len(blk.Dyn) > 0 {
			pos = blk.Dyn[0].Pos
		}
		causes = append(causes, LayoutCause{Kind: LayoutPhCount, Pos: pos, Want: blk.NPh, Got: ph})
	}
	return len(causes) == 0, causes
}

// classOf maps a block's extracted dynamic terminator to its replay class.
func classOf(blk *ir.Block) ir.ReplayClass {
	if !blk.HasDyn {
		return ir.ReplayNoDyn
	}
	switch blk.DynTerm {
	case ir.DTBr, ir.DTSetArg, ir.DTPin:
		return ir.ReplayFork
	case ir.DTRet:
		return ir.ReplayRet
	}
	return ir.ReplayPure
}

// dynSuccessors computes, for block bi, the first blocks with dynamic
// segments reachable from its CFG successors along rt-static control flow
// (paths through blocks replay never records). Cycles of dyn-free blocks
// terminate via the visited set.
func dynSuccessors(p *ir.Program, bi int) []int {
	var out []int
	seen := make(map[int]bool)
	added := make(map[int]bool)
	var stack []int
	push := func(b *ir.Block) {
		for _, s := range b.Succ {
			if s >= 0 && s < len(p.Blocks) && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	push(p.Blocks[bi])
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := p.Blocks[id]
		if b.HasDyn {
			if !added[id] {
				added[id] = true
				out = append(out, id)
			}
			continue
		}
		push(b)
	}
	return out
}

// hotBlocks marks every block that participates in a CFG cycle, via
// Tarjan's strongly-connected components.
func hotBlocks(p *ir.Program) []bool {
	n := len(p.Blocks)
	hot := make([]bool, n)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0

	type frame struct {
		v, si int
	}
	for root := 0; root < n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.si < len(p.Blocks[v].Succ) {
				w := p.Blocks[v].Succ[f.si]
				f.si++
				if w < 0 || w >= n {
					continue
				}
				if index[w] == -1 {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] {
					if index[w] < low[v] {
						low[v] = index[w]
					}
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				u := frames[len(frames)-1].v
				if low[v] < low[u] {
					low[u] = low[v]
				}
			}
			if low[v] == index[v] {
				// Pop the component; multi-node components are cycles, and a
				// single node is hot only with a self-edge.
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				cyclic := len(comp) > 1
				if !cyclic {
					for _, s := range p.Blocks[v].Succ {
						if s == v {
							cyclic = true
						}
					}
				}
				if cyclic {
					for _, w := range comp {
						hot[w] = true
					}
				}
			}
		}
	}
	return hot
}

// buildReplayPlan proves the whole-program fusion/replay table: per-block
// class and layout verdicts, the dynamic-successor graph, and maximal
// pure-flow run lengths. The plan is what engines consume; the evidence
// feeds diagnostics.
func buildReplayPlan(p *ir.Program) (*ir.ReplayPlan, *ReplayEvidence) {
	n := len(p.Blocks)
	plan := &ir.ReplayPlan{Blocks: make([]ir.BlockReplay, n)}
	ev := &ReplayEvidence{Plan: plan, Blocks: make([]BlockReplayEvidence, n)}

	for bi, blk := range p.Blocks {
		br := &plan.Blocks[bi]
		br.Class = classOf(blk)
		br.DynOps = len(blk.Dyn)
		if br.Class == ir.ReplayNoDyn {
			br.LayoutOK = true // trivially: nothing is recorded
			continue
		}
		ok, causes := proveLayout(blk)
		br.LayoutOK = ok
		ev.Blocks[bi].Causes = causes
		ev.Blocks[bi].Succ = dynSuccessors(p, bi)
		plan.DynBlocks++
		plan.DynOps += len(blk.Dyn)
		if br.Class == ir.ReplayPure && ok {
			plan.FusableBlocks++
			plan.FusableOps += len(blk.Dyn)
		}
	}

	hot := hotBlocks(p)
	for bi := range ev.Blocks {
		ev.Blocks[bi].Hot = hot[bi]
	}

	// Maximal pure-flow runs over the dynamic-successor graph: a DFS with
	// cycle capping. A back edge inside a fusable region means the engine's
	// length cap, not the graph, bounds the run.
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]byte, n)
	runLen := make([]int, n)
	var walk func(bi int) int
	walk = func(bi int) int {
		if !plan.Fusable(bi) {
			return 0
		}
		switch state[bi] {
		case visiting:
			return ir.MaxFuseLen // cycle: the cap bounds the run
		case done:
			return runLen[bi]
		}
		state[bi] = visiting
		best := 0
		for _, s := range ev.Blocks[bi].Succ {
			if v := walk(s); v > best {
				best = v
			}
		}
		r := best + 1
		if r > ir.MaxFuseLen {
			r = ir.MaxFuseLen
		}
		state[bi] = done
		runLen[bi] = r
		return r
	}
	for bi := range p.Blocks {
		plan.Blocks[bi].MaxRun = walk(bi)
	}
	return plan, ev
}
