package compile

import (
	"sort"

	"facile/internal/lang/ast"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
)

// Decode decision trees. A pattern switch (or ?exec dispatch) whose case
// patterns all discriminate on one field — every disjunct of every pattern
// has the shape `field == K` or `field == K && residual`, with one field
// and pairwise-distinct constants — compiles into a binary search over the
// extracted field instead of a linear chain of full pattern tests. This is
// the decoding strategy of the New Jersey Machine-Code Toolkit that
// Facile's encoding sublanguage derives from, and it cuts the slow
// simulator's per-instruction decode cost from O(#patterns) to
// O(log #patterns).
//
// The decode is run-time static (the fetched word derives from the
// rt-static PC and the target text), so this purely accelerates the slow
// simulator; the fast simulator never executes it.

// dtLeaf is one discriminating constant: the residual condition (nil if
// the disjunct was exactly field==K) and the index of the case to enter.
type dtLeaf struct {
	k        int64
	residual ast.Expr
	caseIdx  int
}

// analyzeTree reports whether every case pattern fits the decision-tree
// shape, returning the shared discriminating field and the sorted leaves.
func (lw *lowerer) analyzeTree(cases []*ast.PatCase) (string, []dtLeaf, bool) {
	field := ""
	var leaves []dtLeaf
	seen := map[int64]bool{}
	var splitDisjunct func(e ast.Expr, caseIdx int) bool
	splitDisjunct = func(e ast.Expr, caseIdx int) bool {
		// Peel top-level disjunctions.
		if b, ok := e.(*ast.Binary); ok && b.Op == token.LOR {
			return splitDisjunct(b.L, caseIdx) && splitDisjunct(b.R, caseIdx)
		}
		// A pattern reference expands in place.
		if id, ok := e.(*ast.Ident); ok {
			if p, isPat := lw.c.Pats[id.Name]; isPat {
				return splitDisjunct(p.Expr, caseIdx)
			}
			return false
		}
		// field == K, possibly && residual.
		var eq *ast.Binary
		var residual ast.Expr
		if b, ok := e.(*ast.Binary); ok {
			switch b.Op {
			case token.EQ:
				eq = b
			case token.LAND:
				if l, ok := b.L.(*ast.Binary); ok && l.Op == token.EQ {
					eq = l
					residual = b.R
				}
			}
		}
		if eq == nil {
			return false
		}
		id, ok := eq.L.(*ast.Ident)
		if !ok {
			return false
		}
		if _, isField := lw.c.Fields[id.Name]; !isField {
			return false
		}
		lit, ok := eq.R.(*ast.IntLit)
		if !ok {
			return false
		}
		if field == "" {
			field = id.Name
		} else if field != id.Name {
			return false
		}
		if seen[lit.Val] {
			return false // overlapping constants: order would matter
		}
		seen[lit.Val] = true
		leaves = append(leaves, dtLeaf{k: lit.Val, residual: residual, caseIdx: caseIdx})
		return true
	}
	for i, cse := range cases {
		if !splitDisjunct(lw.c.Pats[cse.PatName].Expr, i) {
			return "", nil, false
		}
	}
	if field == "" || len(leaves) < 4 {
		return "", nil, false // tiny dispatches gain nothing
	}
	sort.Slice(leaves, func(i, j int) bool { return leaves[i].k < leaves[j].k })
	return field, leaves, true
}

// dispatchTree emits the binary-search dispatch. word is the fetched
// token; bodies are lowered once and shared by the leaves that reach them.
func (lw *lowerer) dispatchTree(word int32, field string, leaves []dtLeaf,
	cases []*ast.PatCase, def *ast.Block, pos token.Pos) {
	f := lw.frame()
	savedFields, savedWord := f.fields, f.word

	// Extract the discriminating field once, up front.
	f.fields = map[string]int32{}
	f.word = word
	fv := lw.fieldVReg(field, word, pos)

	join := lw.newBlock()
	defBlk := lw.newBlock()

	// Lower each case body exactly once, with a fresh field-extraction
	// scope so the body's extractions are dominated by its entry.
	bodyBlk := make([]*ir.Block, len(cases))
	after := lw.cur
	for i, cse := range cases {
		b := lw.newBlock()
		bodyBlk[i] = b
		lw.cur = b
		f.fields = map[string]int32{}
		f.word = word
		lw.block(cse.Body)
		lw.jmp(join)
	}
	lw.cur = after

	// Recursive binary search over the sorted constants.
	var emit func(lo, hi int)
	emit = func(lo, hi int) {
		if lo == hi {
			leaf := leaves[lo]
			kc := lw.newVReg()
			lw.emit(ir.Inst{Op: ir.Const, D: kc, Imm: leaf.k, Pos: pos})
			eq := lw.newVReg()
			lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.EQ), D: eq, A: fv, B: kc, Pos: pos})
			var hit *ir.Block
			if leaf.residual != nil {
				hit = lw.newBlock()
			} else {
				hit = bodyBlk[leaf.caseIdx]
			}
			lw.br(eq, hit, defBlk, pos)
			if leaf.residual != nil {
				lw.cur = hit
				// Residual tests may extract further fields; a fresh scope
				// keeps those extractions dominated by this block. The
				// discriminant itself was extracted before the tree and
				// dominates everything.
				f.fields = map[string]int32{field: fv}
				f.word = word
				cond := lw.patCond(leaf.residual, word)
				lw.br(cond, bodyBlk[leaf.caseIdx], defBlk, pos)
			}
			return
		}
		mid := (lo + hi + 1) / 2
		kc := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Const, D: kc, Imm: leaves[mid].k, Pos: pos})
		lt := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.LT), D: lt, A: fv, B: kc, Pos: pos})
		left := lw.newBlock()
		right := lw.newBlock()
		lw.br(lt, left, right, pos)
		lw.cur = left
		emit(lo, mid-1)
		lw.cur = right
		emit(mid, hi)
	}
	emit(0, len(leaves)-1)

	// Default arm (no pattern matched).
	lw.cur = defBlk
	f.fields = map[string]int32{}
	f.word = word
	if def != nil {
		lw.block(def)
	}
	lw.jmp(join)

	f.fields, f.word = savedFields, savedWord
	lw.cur = join
}
