package compile

import (
	"testing"

	"facile/internal/lang/ir"
)

func ph() ir.Src    { return ir.Src{Kind: ir.SrcPh} }
func vreg() ir.Src  { return ir.Src{Kind: ir.SrcVReg} }
func konst() ir.Src { return ir.Src{Kind: ir.SrcConst, Const: 1} }

// pureBlock builds a DTNone block whose NPh matches the placeholder count
// the recorder would log for the given instructions.
func pureBlock(id, nph int, dyn ...ir.DynInst) *ir.Block {
	return &ir.Block{ID: id, HasDyn: true, Dyn: dyn, NPh: nph,
		Term: ir.Inst{Op: ir.Ret}, Succ: [2]int{-1, -1}}
}

func noDyn(id int, succ ...int) *ir.Block {
	b := &ir.Block{ID: id, Succ: [2]int{-1, -1}}
	copy(b.Succ[:], succ)
	return b
}

func TestProveLayoutAccepts(t *testing.T) {
	blk := pureBlock(0, 3,
		ir.DynInst{Op: ir.Bin, A: ph(), B: ph()},
		ir.DynInst{Op: ir.StoreG, A: ph()},
		ir.DynInst{Op: ir.LoadG},
	)
	ok, causes := proveLayout(blk)
	if !ok || len(causes) != 0 {
		t.Fatalf("layout rejected: %v", causes)
	}
}

func TestProveLayoutUnreadField(t *testing.T) {
	// LoadG reads no operand fields: a placeholder in A is recorded but
	// never consumed, shifting every later index.
	blk := pureBlock(0, 1, ir.DynInst{Op: ir.LoadG, A: ph()})
	ok, causes := proveLayout(blk)
	if ok || len(causes) != 1 {
		t.Fatalf("ok=%v causes=%v, want one unread-field cause", ok, causes)
	}
	if c := causes[0]; c.Kind != LayoutPhUnread || c.Field != "A" {
		t.Errorf("cause = %+v, want LayoutPhUnread in field A", c)
	}
}

func TestProveLayoutArgsBeyondReadCount(t *testing.T) {
	// QSet reads A, B, and Args[0] only; a placeholder in Args[1] is
	// appended by the recorder but never read back.
	blk := pureBlock(0, 3, ir.DynInst{Op: ir.QOp, Sub: ir.QSet,
		A: ph(), B: ph(), Args: []ir.Src{ph(), ph()}})
	ok, causes := proveLayout(blk)
	if ok || len(causes) != 1 {
		t.Fatalf("ok=%v causes=%v, want one unread-field cause", ok, causes)
	}
	if c := causes[0]; c.Kind != LayoutPhUnread || c.Field != "Args[1]" {
		t.Errorf("cause = %+v, want LayoutPhUnread in Args[1]", c)
	}
}

func TestProveLayoutMalformedQSet(t *testing.T) {
	blk := pureBlock(0, 0, ir.DynInst{Op: ir.QOp, Sub: ir.QSet, A: vreg(), B: konst()})
	ok, causes := proveLayout(blk)
	if ok || len(causes) != 1 || causes[0].Kind != LayoutBadInst {
		t.Fatalf("ok=%v causes=%v, want one malformed-instruction cause", ok, causes)
	}
}

func TestProveLayoutPhCountMismatch(t *testing.T) {
	// The write-through StoreG quirk: the recorder counts a placeholder
	// the compile-time assignment does not see in a read field.
	blk := pureBlock(0, 2, ir.DynInst{Op: ir.StoreG, A: ph()})
	ok, causes := proveLayout(blk)
	if ok || len(causes) != 1 {
		t.Fatalf("ok=%v causes=%v, want one count-mismatch cause", ok, causes)
	}
	if c := causes[0]; c.Kind != LayoutPhCount || c.Want != 2 || c.Got != 1 {
		t.Errorf("cause = %+v, want LayoutPhCount want=2 got=1", c)
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		blk  *ir.Block
		want ir.ReplayClass
	}{
		{noDyn(0), ir.ReplayNoDyn},
		{&ir.Block{HasDyn: true, Succ: [2]int{-1, -1}}, ir.ReplayPure},
		{&ir.Block{HasDyn: true, DynTerm: ir.DTBr, Succ: [2]int{-1, -1}}, ir.ReplayFork},
		{&ir.Block{HasDyn: true, DynTerm: ir.DTSetArg, Succ: [2]int{-1, -1}}, ir.ReplayFork},
		{&ir.Block{HasDyn: true, DynTerm: ir.DTPin, Succ: [2]int{-1, -1}}, ir.ReplayFork},
		{&ir.Block{HasDyn: true, DynTerm: ir.DTRet, Succ: [2]int{-1, -1}}, ir.ReplayRet},
	}
	for i, c := range cases {
		if got := classOf(c.blk); got != c.want {
			t.Errorf("case %d: classOf = %v, want %v", i, got, c.want)
		}
	}
}

func TestDynSuccessorsSkipStaticBlocks(t *testing.T) {
	// 0(dyn) -> 1(static) -> 2(static) -> 3(dyn); 1 -> 4(dyn)
	p := &ir.Program{Blocks: []*ir.Block{
		pureBlock(0, 0, ir.DynInst{Op: ir.LoadG}),
		noDyn(1, 2, 4),
		noDyn(2, 3),
		pureBlock(3, 0, ir.DynInst{Op: ir.LoadG}),
		pureBlock(4, 0, ir.DynInst{Op: ir.LoadG}),
	}}
	p.Blocks[0].Succ[0] = 1
	got := dynSuccessors(p, 0)
	want := map[int]bool{3: true, 4: true}
	if len(got) != 2 || !want[got[0]] || !want[got[1]] {
		t.Errorf("dynSuccessors = %v, want {3, 4}", got)
	}
}

func TestHotBlocks(t *testing.T) {
	// 0 -> 1 -> 2 -> 1 (cycle), 0 -> 3 (self-loop), 0 -> 4 (acyclic)
	p := &ir.Program{Blocks: []*ir.Block{
		noDyn(0, 1, 3),
		noDyn(1, 2),
		noDyn(2, 1, 4),
		noDyn(3, 3),
		noDyn(4),
	}}
	hot := hotBlocks(p)
	want := []bool{false, true, true, true, false}
	for i := range want {
		if hot[i] != want[i] {
			t.Errorf("hot[%d] = %v, want %v", i, hot[i], want[i])
		}
	}
}

func TestMaxRunStraightLineAndFork(t *testing.T) {
	// 0(pure) -> 1(pure) -> 2(fork) -> 3(pure): the fork caps the run at
	// two, and the block past it starts a fresh run of one.
	fork := &ir.Block{ID: 2, HasDyn: true, DynTerm: ir.DTBr,
		Dyn: []ir.DynInst{{Op: ir.LoadG}}, Succ: [2]int{3, -1}}
	p := &ir.Program{Blocks: []*ir.Block{
		pureBlock(0, 0, ir.DynInst{Op: ir.LoadG}),
		pureBlock(1, 0, ir.DynInst{Op: ir.LoadG}),
		fork,
		pureBlock(3, 0, ir.DynInst{Op: ir.LoadG}),
	}}
	p.Blocks[0].Succ[0] = 1
	p.Blocks[1].Succ[0] = 2
	plan, ev := buildReplayPlan(p)
	wantRuns := []int{2, 1, 0, 1}
	for i, w := range wantRuns {
		if got := plan.Blocks[i].MaxRun; got != w {
			t.Errorf("MaxRun[%d] = %d, want %d", i, got, w)
		}
	}
	if plan.DynBlocks != 4 || plan.FusableBlocks != 3 || plan.DynOps != 4 || plan.FusableOps != 3 {
		t.Errorf("aggregates %+v, want 4/3 blocks, 4/3 ops", plan)
	}
	if got := ev.Blocks[1].Succ; len(got) != 1 || got[0] != 2 {
		t.Errorf("evidence succ for block 1 = %v, want [2]", got)
	}
}

func TestMaxRunCycleCapped(t *testing.T) {
	// A fusable self-loop: the engine's length cap, not the graph, bounds
	// the superinstruction.
	b := pureBlock(0, 0, ir.DynInst{Op: ir.LoadG})
	b.Succ[0] = 0
	plan, ev := buildReplayPlan(&ir.Program{Blocks: []*ir.Block{b}})
	if got := plan.Blocks[0].MaxRun; got != ir.MaxFuseLen {
		t.Errorf("MaxRun = %d, want the fuse cap %d", got, ir.MaxFuseLen)
	}
	if !ev.Blocks[0].Hot {
		t.Error("self-loop block not marked hot")
	}
}

func TestPlanLayoutFailureBlocksFusion(t *testing.T) {
	// A layout-unprovable pure block must not count as fusable, and
	// Fusable() must agree.
	b := pureBlock(0, 1, ir.DynInst{Op: ir.LoadG, A: ph()})
	plan, ev := buildReplayPlan(&ir.Program{Blocks: []*ir.Block{b}})
	if plan.Fusable(0) {
		t.Error("layout-unprovable block reported fusable")
	}
	if plan.FusableBlocks != 0 || plan.FusableOps != 0 {
		t.Errorf("aggregates count unfusable work: %+v", plan)
	}
	if len(ev.Blocks[0].Causes) == 0 {
		t.Error("no evidence causes for the layout failure")
	}
}
