// Package compile lowers checked Facile programs to IR, runs binding-time
// analysis, and extracts the dynamic segments the fast simulator replays.
//
// Lowering inlines every call (Facile forbids recursion, so this
// terminates); whole-program inlining gives the precision of the paper's
// polyvariant binding-time analysis at the cost of code growth — the same
// trade the paper's compiler makes. The `?exec()` attribute and pattern
// switches expand into a decode decision tree over the declared patterns,
// with field extractions bound as virtual registers and sem bodies inlined
// at each dispatch site.
package compile

import (
	"fmt"

	"facile/internal/lang/ast"
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// Error is a compile-time error with position information.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Options control optional compiler behavior.
type Options struct {
	// LiftLiveOnly enables the liveness optimization of paper §6.3 (#3):
	// write-throughs are skipped for globals no dynamic reader observes,
	// shrinking both the action stream and the cache.
	LiftLiveOnly bool

	// NoOptimize disables constant folding / copy propagation / dead-code
	// elimination (paper §6.3 #5), for ablation measurements.
	NoOptimize bool
}

// Compile lowers a checked program and runs BTA and action extraction.
func Compile(c *types.Checked, opt Options) (*ir.Program, error) {
	lw := &lowerer{c: c, p: &ir.Program{}}
	lw.declare()
	if err := lw.lowerMain(); err != nil {
		return nil, err
	}
	if !opt.NoOptimize {
		optimize(lw.p)
	}
	if err := analyze(lw.p, c, opt); err != nil {
		return nil, err
	}
	lw.p.Replay, _ = buildReplayPlan(lw.p)
	return lw.p, nil
}

type loopCtx struct {
	breakTo, contTo int
}

type frame struct {
	locals map[string]int32 // params and locals -> vreg
	fields map[string]int32 // decoded fields in scope -> vreg
	word   int32            // decoded token word vreg (fields derive from it)
	retReg int32
	retBlk int
}

type lowerer struct {
	c      *types.Checked
	p      *ir.Program
	blocks []*ir.Block
	cur    *ir.Block
	nv     int32
	loops  []loopCtx
	frames []*frame
	depth  int
	err    error
}

func (lw *lowerer) errorf(pos token.Pos, format string, args ...any) {
	if lw.err == nil {
		lw.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
}

func (lw *lowerer) declare() {
	c := lw.c
	// Dense global tables in deterministic declaration order.
	lw.p.Globals = make([]ir.GlobalDecl, len(c.GlobalIdx))
	lw.p.Arrays = make([]ir.ArrayDecl, len(c.Arrays))
	lw.p.QueuesG = make([]ir.QueueDecl, len(c.Queues))
	for _, g := range c.Prog.Globals {
		switch g.Kind {
		case ast.ValArray:
			lw.p.Arrays[c.Arrays[g.Name]] = ir.ArrayDecl{Name: g.Name, Len: g.ArrayLen, Init: g.ArrayInit}
		case ast.ValQueue:
			lw.p.QueuesG[c.Queues[g.Name]] = ir.QueueDecl{Name: g.Name, Cap: g.QueueCap, Width: g.QueueW}
		default:
			init := int64(0)
			if g.Init != nil {
				init, _ = types.ConstFold(g.Init)
			}
			lw.p.Globals[c.GlobalIdx[g.Name]] = ir.GlobalDecl{Name: g.Name, Init: init}
		}
	}
	lw.p.Externs = make([]string, len(c.ExternIdx))
	for name, i := range c.ExternIdx {
		lw.p.Externs[i] = name
	}
	for _, prm := range c.Main.Params {
		pd := ir.ParamDecl{Name: prm.Name}
		if prm.Kind == ast.ParamQueue {
			pd.IsQueue = true
			pd.Queue = ir.QueueDecl{Name: prm.Name, Cap: prm.QueueCap, Width: prm.QueueW}
		}
		lw.p.Params = append(lw.p.Params, pd)
	}
}

func (lw *lowerer) newVReg() int32 {
	v := lw.nv
	lw.nv++
	return v
}

func (lw *lowerer) newBlock() *ir.Block {
	b := &ir.Block{ID: len(lw.blocks), Succ: [2]int{-1, -1}}
	lw.blocks = append(lw.blocks, b)
	return b
}

func (lw *lowerer) emit(in ir.Inst) {
	lw.cur.Insts = append(lw.cur.Insts, in)
}

// jmp terminates the current block with a jump to to, unless it already
// has a terminator (break/continue/return ended it). The synthesized
// terminator inherits the position of the last real instruction in the
// block so no control edge is left without a source span.
func (lw *lowerer) jmp(to *ir.Block) {
	if !lw.cur.Terminated() {
		lw.cur.Term = ir.Inst{Op: ir.Jmp, Pos: lw.lastPos()}
		lw.cur.Succ[0] = to.ID
	}
}

// lastPos returns the position of the most recent instruction emitted into
// the current block, for synthesized terminators.
func (lw *lowerer) lastPos() token.Pos {
	for i := len(lw.cur.Insts) - 1; i >= 0; i-- {
		if lw.cur.Insts[i].Pos.Line > 0 {
			return lw.cur.Insts[i].Pos
		}
	}
	return token.Pos{}
}

// nameVReg records the source binding a vreg stands for.
func (lw *lowerer) nameVReg(v int32, name, kind string, pos token.Pos) {
	if lw.p.VRegNames == nil {
		lw.p.VRegNames = map[int32]ir.VRegName{}
	}
	lw.p.VRegNames[v] = ir.VRegName{Name: name, Kind: kind, Pos: pos}
}

func (lw *lowerer) br(cond int32, then, els *ir.Block, pos token.Pos) {
	lw.cur.Term = ir.Inst{Op: ir.Br, A: cond, Pos: pos}
	lw.cur.Succ = [2]int{then.ID, els.ID}
}

func (lw *lowerer) ret(pos token.Pos) {
	lw.cur.Term = ir.Inst{Op: ir.Ret, Pos: pos}
	lw.cur.Succ = [2]int{-1, -1}
}

const maxInlineDepth = 64

func (lw *lowerer) lowerMain() error {
	main := lw.c.Main
	f := &frame{locals: map[string]int32{}, fields: map[string]int32{}, retReg: -1, retBlk: -1, word: -1}
	// Integer parameters occupy the first vregs, seeded by the runtime.
	for _, prm := range main.Params {
		if prm.Kind == ast.ParamInt {
			v := lw.newVReg()
			f.locals[prm.Name] = v
			lw.nameVReg(v, prm.Name, "param", prm.P)
		}
	}
	lw.frames = append(lw.frames, f)
	entry := lw.newBlock()
	lw.p.Entry = entry.ID
	lw.cur = entry
	lw.block(main.Body)
	if !lw.cur.Terminated() {
		lw.ret(main.P)
	}
	// Unreachable continuation blocks (after break/continue/return) may be
	// left unterminated; seal them as returns carrying the position of the
	// block's last instruction (or of main as a fallback).
	for _, b := range lw.blocks {
		if !b.Terminated() {
			pos := main.P
			for i := len(b.Insts) - 1; i >= 0; i-- {
				if b.Insts[i].Pos.Line > 0 {
					pos = b.Insts[i].Pos
					break
				}
			}
			b.Term = ir.Inst{Op: ir.Ret, Pos: pos}
			b.Succ = [2]int{-1, -1}
		}
	}
	lw.p.Blocks = lw.blocks
	lw.p.NumVReg = int(lw.nv)
	return lw.err
}

func (lw *lowerer) frame() *frame { return lw.frames[len(lw.frames)-1] }

// lookupVar resolves an identifier to a vreg (locals, params, fields) or a
// global index.
func (lw *lowerer) lookupVar(name string) (vreg int32, gidx int, isVReg bool, ok bool) {
	f := lw.frame()
	if v, found := f.locals[name]; found {
		return v, 0, true, true
	}
	if v, found := f.fields[name]; found {
		return v, 0, true, true
	}
	if gi, found := lw.c.GlobalIdx[name]; found {
		return 0, gi, false, true
	}
	return 0, 0, false, false
}

// queueID resolves a queue name to its IR identity (>= 0 global queues,
// negative encodings for main queue parameters).
func (lw *lowerer) queueID(name string) (int32, bool) {
	if qi, ok := lw.c.Queues[name]; ok {
		return int32(qi), true
	}
	for i, prm := range lw.c.Main.Params {
		if prm.Kind == ast.ParamQueue && prm.Name == name {
			return int32(^i), true
		}
	}
	return 0, false
}

// ------------------------------------------------------------ statements --

func (lw *lowerer) block(b *ast.Block) {
	// Block-scoped locals: save and restore the name map.
	f := lw.frame()
	saved := make(map[string]int32, len(f.locals))
	for k, v := range f.locals {
		saved[k] = v
	}
	for _, s := range b.Stmts {
		lw.stmt(s)
		if lw.err != nil {
			return
		}
	}
	f.locals = saved
}

func (lw *lowerer) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		lw.block(s)
	case *ast.LocalDecl:
		v := lw.newVReg()
		if s.Decl.Init != nil {
			src := lw.expr(s.Decl.Init)
			lw.emit(ir.Inst{Op: ir.Mov, D: v, A: src, Pos: s.Decl.P})
		} else {
			lw.emit(ir.Inst{Op: ir.Const, D: v, Imm: 0, Pos: s.Decl.P})
		}
		lw.frame().locals[s.Decl.Name] = v
		lw.nameVReg(v, s.Decl.Name, "local", s.Decl.P)
	case *ast.Assign:
		lw.assign(s)
	case *ast.If:
		cond := lw.expr(s.Cond)
		then := lw.newBlock()
		join := lw.newBlock()
		els := join
		if s.Else != nil {
			els = lw.newBlock()
		}
		lw.br(cond, then, els, s.P)
		lw.cur = then
		lw.block(s.Then)
		lw.jmp(join)
		if s.Else != nil {
			lw.cur = els
			lw.stmt(s.Else)
			lw.jmp(join)
		}
		lw.cur = join
	case *ast.While:
		head := lw.newBlock()
		body := lw.newBlock()
		exit := lw.newBlock()
		lw.jmp(head)
		lw.cur = head
		cond := lw.expr(s.Cond)
		lw.br(cond, body, exit, s.P)
		lw.loops = append(lw.loops, loopCtx{breakTo: exit.ID, contTo: head.ID})
		lw.cur = body
		lw.block(s.Body)
		lw.jmp(head)
		lw.loops = lw.loops[:len(lw.loops)-1]
		lw.cur = exit
	case *ast.Break:
		lw.cur.Term = ir.Inst{Op: ir.Jmp, Pos: s.P}
		lw.cur.Succ[0] = lw.loops[len(lw.loops)-1].breakTo
		lw.cur = lw.newBlock() // unreachable continuation
	case *ast.Continue:
		lw.cur.Term = ir.Inst{Op: ir.Jmp, Pos: s.P}
		lw.cur.Succ[0] = lw.loops[len(lw.loops)-1].contTo
		lw.cur = lw.newBlock()
	case *ast.Return:
		f := lw.frame()
		if f.retBlk < 0 {
			// return from main ends the step
			lw.ret(s.P)
			lw.cur = lw.newBlock()
			return
		}
		if s.Value != nil {
			v := lw.expr(s.Value)
			lw.emit(ir.Inst{Op: ir.Mov, D: f.retReg, A: v, Pos: s.P})
		}
		lw.cur.Term = ir.Inst{Op: ir.Jmp, Pos: s.P}
		lw.cur.Succ[0] = f.retBlk
		lw.cur = lw.newBlock()
	case *ast.Switch:
		lw.intSwitch(s)
	case *ast.PatSwitch:
		subj := lw.expr(s.Subject)
		lw.dispatch(subj, s.Cases, s.Default, s.P)
	case *ast.ExprStmt:
		lw.expr(s.X)
	}
}

func (lw *lowerer) assign(s *ast.Assign) {
	v := lw.expr(s.Value)
	switch t := s.Target.(type) {
	case *ast.Ident:
		if vr, gi, isV, ok := lw.lookupVar(t.Name); ok {
			if isV {
				lw.emit(ir.Inst{Op: ir.Mov, D: vr, A: v, Pos: s.P})
			} else {
				lw.emit(ir.Inst{Op: ir.StoreG, Imm: int64(gi), A: v, Pos: s.P})
			}
			return
		}
		lw.errorf(t.P, "assignment to unresolved %q", t.Name)
	case *ast.Index:
		arr := t.Arr.(*ast.Ident)
		ai := lw.c.Arrays[arr.Name]
		idx := lw.expr(t.Idx)
		lw.emit(ir.Inst{Op: ir.StoreA, Imm: int64(ai), A: idx, B: v, Pos: s.P})
	}
}

func (lw *lowerer) intSwitch(s *ast.Switch) {
	subj := lw.expr(s.Subject)
	join := lw.newBlock()
	for _, cse := range s.Cases {
		body := lw.newBlock()
		// cond = subj == v0 || subj == v1 ...
		cond := int32(-1)
		for _, val := range cse.Vals {
			c := lw.newVReg()
			cv := lw.newVReg()
			lw.emit(ir.Inst{Op: ir.Const, D: cv, Imm: val, Pos: cse.P})
			lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.EQ), D: c, A: subj, B: cv, Pos: cse.P})
			if cond < 0 {
				cond = c
			} else {
				d := lw.newVReg()
				lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.LOR), D: d, A: cond, B: c, Pos: cse.P})
				cond = d
			}
		}
		next := lw.newBlock()
		lw.br(cond, body, next, cse.P)
		lw.cur = body
		lw.block(cse.Body)
		lw.jmp(join)
		lw.cur = next
	}
	if s.Default != nil {
		lw.block(s.Default)
	}
	lw.jmp(join)
	lw.cur = join
}

// ----------------------------------------------------------- expressions --

func (lw *lowerer) expr(e ast.Expr) int32 {
	switch e := e.(type) {
	case *ast.IntLit:
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Const, D: v, Imm: e.Val, Pos: e.P})
		return v
	case *ast.Ident:
		if vr, gi, isV, ok := lw.lookupVar(e.Name); ok {
			if isV {
				return vr
			}
			v := lw.newVReg()
			lw.emit(ir.Inst{Op: ir.LoadG, D: v, Imm: int64(gi), Pos: e.P})
			return v
		}
		// Decoded token fields, in scope inside sem bodies and pattern
		// cases, are extracted lazily from the dispatched word.
		if f := lw.frame(); f.word >= 0 {
			if _, isField := lw.c.Fields[e.Name]; isField {
				return lw.fieldVReg(e.Name, f.word, e.P)
			}
		}
		lw.errorf(e.P, "unresolved identifier %q", e.Name)
		return lw.zero(e.P)
	case *ast.Index:
		arr := e.Arr.(*ast.Ident)
		ai := lw.c.Arrays[arr.Name]
		idx := lw.expr(e.Idx)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.LoadA, D: v, Imm: int64(ai), A: idx, Pos: e.P})
		return v
	case *ast.Unary:
		x := lw.expr(e.X)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Un, Sub: uint8(e.Op), D: v, A: x, Pos: e.P})
		return v
	case *ast.Binary:
		l := lw.expr(e.L)
		r := lw.expr(e.R)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(e.Op), D: v, A: l, B: r, Pos: e.P})
		return v
	case *ast.Call:
		return lw.call(e)
	case *ast.Attr:
		return lw.attr(e)
	}
	lw.errorf(e.Pos(), "unsupported expression")
	return lw.zero(e.Pos())
}

func (lw *lowerer) zero(pos token.Pos) int32 {
	v := lw.newVReg()
	lw.emit(ir.Inst{Op: ir.Const, D: v, Imm: 0, Pos: pos})
	return v
}

func (lw *lowerer) call(e *ast.Call) int32 {
	if e.Name == types.SetArgs {
		argIdx := 0
		for i, a := range e.Args {
			if i < len(lw.c.Main.Params) && lw.c.Main.Params[i].Kind == ast.ParamQueue {
				// Queue state is carried implicitly: the key snapshot reads
				// the queue's contents at step end.
				continue
			}
			v := lw.expr(a)
			lw.emit(ir.Inst{Op: ir.SetArg, Imm: int64(argIdx), A: v, Pos: e.P})
			argIdx++
			// Dynamic SetArgs become dynamic-result tests; block-final
			// position keeps action nodes aligned with blocks.
			nb := lw.newBlock()
			lw.jmp(nb)
			lw.cur = nb
		}
		return lw.zero(e.P)
	}
	if xi, ok := lw.c.ExternIdx[e.Name]; ok {
		args := make([]int32, len(e.Args))
		for i, a := range e.Args {
			args[i] = lw.expr(a)
		}
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.CallExt, D: v, Imm: int64(xi), Args: args, Pos: e.P})
		return v
	}
	f := lw.c.Funs[e.Name]
	if f == nil {
		lw.errorf(e.P, "call to unknown function %q", e.Name)
		return lw.zero(e.P)
	}
	return lw.inline(f, e)
}

// inline expands a Facile function call in place with fresh vregs.
func (lw *lowerer) inline(f *ast.FunDecl, e *ast.Call) int32 {
	lw.depth++
	defer func() { lw.depth-- }()
	if lw.depth > maxInlineDepth {
		lw.errorf(e.P, "call nesting exceeds %d (recursion should have been rejected)", maxInlineDepth)
		return lw.zero(e.P)
	}
	nf := &frame{locals: map[string]int32{}, fields: map[string]int32{}, retReg: lw.newVReg(), word: -1}
	lw.emit(ir.Inst{Op: ir.Const, D: nf.retReg, Imm: 0, Pos: e.P})
	for i, prm := range f.Params {
		av := lw.expr(e.Args[i])
		pv := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Mov, D: pv, A: av, Pos: e.P})
		nf.locals[prm.Name] = pv
		lw.nameVReg(pv, prm.Name, "param", prm.P)
	}
	cont := lw.newBlock()
	nf.retBlk = cont.ID
	lw.frames = append(lw.frames, nf)
	lw.block(f.Body)
	lw.jmp(cont)
	lw.frames = lw.frames[:len(lw.frames)-1]
	lw.cur = cont
	return nf.retReg
}

func (lw *lowerer) attr(e *ast.Attr) int32 {
	// Queue attributes.
	if id, ok := e.X.(*ast.Ident); ok {
		if qid, isQ := lw.queueID(id.Name); isQ {
			return lw.queueAttr(e, qid)
		}
	}
	switch e.Name {
	case "sext", "zext":
		x := lw.expr(e.X)
		bits, _ := types.ConstFold(e.Args[0])
		sub := uint8(0)
		if e.Name == "sext" {
			sub = 1
		}
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Ext, Sub: sub, D: v, A: x, Imm: bits, Pos: e.P})
		return v
	case "fetch":
		x := lw.expr(e.X)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Fetch, D: v, A: x, Pos: e.P})
		return v
	case "pin":
		// The paper's dynamic result test: the pinned value becomes
		// run-time static along each recorded control path. Block-final so
		// action nodes can fork on it.
		x := lw.expr(e.X)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Pin, D: v, A: x, Pos: e.P})
		nb := lw.newBlock()
		lw.jmp(nb)
		lw.cur = nb
		return v
	case "exec":
		x := lw.expr(e.X)
		// Dispatch over every pattern that has semantics, in declaration
		// order (the paper's generated decode-and-dispatch function).
		var cases []*ast.PatCase
		for _, name := range lw.c.PatOrder {
			if sem, ok := lw.c.Sems[name]; ok {
				cases = append(cases, &ast.PatCase{PatName: name, Body: sem.Body, P: sem.P})
			}
		}
		lw.dispatch(x, cases, nil, e.P)
		return lw.zero(e.P)
	}
	lw.errorf(e.P, "unknown attribute ?%s", e.Name)
	return lw.zero(e.P)
}

func (lw *lowerer) queueAttr(e *ast.Attr, qid int32) int32 {
	sub := map[string]uint8{
		"size": ir.QSize, "push": ir.QPush, "pop": ir.QPop, "get": ir.QGet,
		"set": ir.QSet, "front": ir.QFront, "full": ir.QFull, "clear": ir.QClear,
	}[e.Name]
	in := ir.Inst{Op: ir.QOp, Sub: sub, QID: qid, A: -1, B: -1, Pos: e.P}
	switch sub {
	case ir.QPush:
		for _, a := range e.Args {
			in.Args = append(in.Args, lw.expr(a))
		}
	case ir.QGet:
		in.A = lw.expr(e.Args[0])
		in.B = lw.expr(e.Args[1])
	case ir.QSet:
		in.A = lw.expr(e.Args[0])
		in.B = lw.expr(e.Args[1])
		in.Args = []int32{lw.expr(e.Args[2])}
	case ir.QFront:
		in.A = lw.expr(e.Args[0])
	}
	v := lw.newVReg()
	in.D = v
	lw.emit(in)
	return v
}

// dispatch lowers a pattern switch (or ?exec) on the instruction at
// address addr: fetch the token word, then test each case's pattern in
// order, binding its fields in scope of the case body.
func (lw *lowerer) dispatch(addr int32, cases []*ast.PatCase, def *ast.Block, pos token.Pos) {
	word := lw.newVReg()
	lw.emit(ir.Inst{Op: ir.Fetch, D: word, A: addr, Pos: pos})
	// When every case discriminates on one field with distinct constants,
	// compile a binary-search decision tree instead of a linear chain.
	if field, leaves, ok := lw.analyzeTree(cases); ok {
		lw.dispatchTree(word, field, leaves, cases, def, pos)
		return
	}
	join := lw.newBlock()
	f := lw.frame()
	savedFields, savedWord := f.fields, f.word
	for _, cse := range cases {
		// Fields are extracted fresh per case arm so each arm's extraction
		// set stays minimal.
		f.fields = map[string]int32{}
		f.word = word
		cond := lw.patCond(lw.c.Pats[cse.PatName].Expr, word)
		body := lw.newBlock()
		next := lw.newBlock()
		lw.br(cond, body, next, cse.P)
		lw.cur = body
		lw.block(cse.Body)
		lw.jmp(join)
		lw.cur = next
	}
	f.fields, f.word = savedFields, savedWord
	if def != nil {
		lw.block(def)
	}
	lw.jmp(join)
	lw.cur = join
}

// fieldVReg extracts a token field from word, memoizing the extraction in
// the current frame.
func (lw *lowerer) fieldVReg(name string, word int32, pos token.Pos) int32 {
	f := lw.frame()
	if v, ok := f.fields[name]; ok {
		return v
	}
	fd := lw.c.Fields[name]
	sh := lw.newVReg()
	lw.emit(ir.Inst{Op: ir.Const, D: sh, Imm: int64(fd.Lo), Pos: pos})
	t := lw.newVReg()
	lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.SHR), D: t, A: word, B: sh, Pos: pos})
	mk := lw.newVReg()
	width := fd.Hi - fd.Lo + 1
	mask := int64(1)<<uint(width) - 1
	lw.emit(ir.Inst{Op: ir.Const, D: mk, Imm: mask, Pos: pos})
	v := lw.newVReg()
	lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(token.AMP), D: v, A: t, B: mk, Pos: pos})
	f.fields[name] = v
	lw.nameVReg(v, name, "field", fd.P)
	return v
}

// patCond lowers a pattern expression into a condition vreg over word.
func (lw *lowerer) patCond(e ast.Expr, word int32) int32 {
	switch e := e.(type) {
	case *ast.IntLit:
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Const, D: v, Imm: e.Val, Pos: e.P})
		return v
	case *ast.Ident:
		if _, isField := lw.c.Fields[e.Name]; isField {
			return lw.fieldVReg(e.Name, word, e.P)
		}
		// pattern reference: expand
		return lw.patCond(lw.c.Pats[e.Name].Expr, word)
	case *ast.Unary:
		x := lw.patCond(e.X, word)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Un, Sub: uint8(e.Op), D: v, A: x, Pos: e.P})
		return v
	case *ast.Binary:
		l := lw.patCond(e.L, word)
		r := lw.patCond(e.R, word)
		v := lw.newVReg()
		lw.emit(ir.Inst{Op: ir.Bin, Sub: uint8(e.Op), D: v, A: l, B: r, Pos: e.P})
		return v
	}
	lw.errorf(e.Pos(), "invalid pattern expression")
	return lw.zero(e.Pos())
}
