package compile

import (
	"testing"

	"facile/facile"
	"facile/internal/lang/ir"
	"facile/internal/lang/parser"
	"facile/internal/lang/types"
)

func compileFacts(t *testing.T, src string, opt Options) (*ir.Program, *Facts) {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	checked, err := types.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, f, err := CompileWithFacts(checked, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p, f
}

func globalIndex(t *testing.T, p *ir.Program, name string) int {
	t.Helper()
	for gi, g := range p.Globals {
		if g.Name == name {
			return gi
		}
	}
	t.Fatalf("global %q not found", name)
	return -1
}

// TestGlobalStaticDynamicStaticAcrossBackEdge drives a global through the
// full flow-sensitive lifecycle in one step: a static store, then a loop
// whose body re-dirties it dynamically — the back-edge must propagate the
// dynamic state into the loop head, so the read inside the body is a
// dynamic read — then a static store after the loop, which must still
// write through because the global was read while dynamic.
func TestGlobalStaticDynamicStaticAcrossBackEdge(t *testing.T) {
	p, f := compileFacts(t, `
val g = 0;
val A = array(4){0};
fun main(x) {
    g = x;
    val i = 0;
    while (i < 3) {
        A[i] = g;
        g = A[i];
        i = i + 1;
    }
    g = 2;
    set_args(x);
}
`, Options{})
	gi := globalIndex(t, p, "g")
	if !f.DynRead[gi] {
		t.Error("g was read inside the loop after the back-edge made it dynamic, but DynRead is false")
	}
	if f.GlobalDynStore[gi].Kind == CauseNone {
		t.Error("the loop's dynamic store to g was not recorded in GlobalDynStore")
	}
	if f.GlobalStaticStore[gi].Line == 0 {
		t.Error("the rt-static store to g was not recorded in GlobalStaticStore")
	}
	// The trailing static store must be a write-through (the value is
	// needed when the global is later read dynamically).
	wt := 0
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			if in.Op == ir.StoreG && in.Imm == int64(gi) && in.BT == ir.BTStaticWT {
				wt++
			}
		}
	}
	if wt == 0 {
		t.Error("no write-through store to g survived; the liveness facts disagree with the lowering")
	}
}

// TestLiftLiveOnlyElidesDeadWriteThrough pins the §6.3 #3 liveness
// optimization against the facts layer: a global never read while
// dynamic keeps DynRead false, and LiftLiveOnly elides its write-through
// (the store stays, but run-time static, not BTStaticWT).
func TestLiftLiveOnlyElidesDeadWriteThrough(t *testing.T) {
	src := `
val g = 0;
extern e(1);
fun main(x) {
    g = x * 2;
    e(x);
    set_args((x + 1) % 4);
}
`
	countWT := func(p *ir.Program, gi int) int {
		n := 0
		for _, b := range p.Blocks {
			for _, in := range b.Insts {
				if in.Op == ir.StoreG && in.Imm == int64(gi) && in.BT == ir.BTStaticWT {
					n++
				}
			}
		}
		return n
	}
	p0, f0 := compileFacts(t, src, Options{})
	gi := globalIndex(t, p0, "g")
	if f0.DynRead[gi] {
		t.Fatal("g is never read while dynamic, but DynRead is true")
	}
	if countWT(p0, gi) == 0 {
		t.Error("without LiftLiveOnly the store must write through")
	}
	p1, f1 := compileFacts(t, src, Options{LiftLiveOnly: true})
	if f1.DynRead[gi] {
		t.Fatal("LiftLiveOnly changed the DynRead fact")
	}
	if n := countWT(p1, gi); n != 0 {
		t.Errorf("LiftLiveOnly left %d write-through store(s) to a dead global", n)
	}
}

// checkMonotone asserts the lattice evidence: every recorded transition
// is a strict raise (the fixpoint never lowers a binding time), each vreg
// transitions at most once (the vreg lattice is two-level), and the final
// classification agrees with the last transition.
func checkMonotone(t *testing.T, f *Facts) {
	t.Helper()
	seen := map[int32]int{}
	for _, tr := range f.Transitions {
		if tr.From >= tr.To {
			t.Errorf("vreg %d transition %d -> %d is not a raise", tr.VReg, tr.From, tr.To)
		}
		seen[tr.VReg]++
	}
	for v, n := range seen {
		if n > 1 {
			t.Errorf("vreg %d transitioned %d times; the two-level vreg lattice allows one raise", v, n)
		}
		if int(v) < len(f.VRegBT) && f.VRegBT[v] != ir.BTDynamic {
			t.Errorf("vreg %d has a recorded raise but final binding time %d", v, f.VRegBT[v])
		}
	}
}

func TestLatticeMonotonicitySynthetic(t *testing.T) {
	// The loop forces several fixpoint iterations: i starts static, the
	// array read makes t dynamic, and the back-edge promotes the accumulator.
	_, f := compileFacts(t, `
val A = array(8){0};
val out = 0;
fun main(x) {
    val acc = 0;
    val i = 0;
    while (i < 4) {
        val t = A[i];
        acc = acc + t;
        i = i + 1;
    }
    out = acc;
    set_args(x);
}
`, Options{})
	if len(f.Transitions) == 0 {
		t.Fatal("no lattice transitions recorded for a program with dynamic promotion")
	}
	checkMonotone(t, f)
}

// TestLatticeMonotonicityBundled runs the monotonicity assertions over
// the real out-of-order description — the largest fixpoint the repo
// exercises, including queue state and pins.
func TestLatticeMonotonicityBundled(t *testing.T) {
	astProg, err := parser.Parse(facile.OOOSim())
	if err != nil {
		t.Fatal(err)
	}
	checked, err := types.Check(astProg)
	if err != nil {
		t.Fatal(err)
	}
	_, f, err := CompileWithFacts(checked, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Transitions) == 0 {
		t.Fatal("no transitions recorded for ooo.fac")
	}
	checkMonotone(t, f)
	// Cause edges must point at genuinely dynamic sources.
	for v, c := range f.VRegCause {
		if c.Kind == CauseVReg {
			if int(c.From) >= len(f.VRegBT) || f.VRegBT[c.From] != ir.BTDynamic {
				t.Errorf("vreg %d blames vreg %d, which is not dynamic", v, c.From)
			}
		}
	}
}
