package compile

import (
	"facile/internal/lang/ir"
	"facile/internal/lang/token"
	"facile/internal/lang/types"
)

// optimize implements the paper's §6.3 (#5) "worthwhile addition":
// compile-time constant folding, plus the copy propagation and dead-code
// elimination that whole-program inlining makes profitable (inlining
// introduces a parameter-binding Mov per argument and a Const per literal;
// most fold away). The pass runs before binding-time analysis, so both the
// slow and fast simulators benefit, exactly as the paper anticipates.
//
// All rewrites are block-local (safe without a dataflow framework); the
// cleanup iterates with global dead-code elimination until nothing
// changes.
func optimize(p *ir.Program) {
	for {
		changed := false
		for _, b := range p.Blocks {
			if foldBlock(b) {
				changed = true
			}
		}
		if dce(p) {
			changed = true
		}
		if !changed {
			return
		}
	}
}

// foldBlock performs local constant folding and copy propagation.
func foldBlock(b *ir.Block) bool {
	consts := map[int32]int64{}
	copies := map[int32]int32{} // d -> source it aliases
	changed := false

	// resolve rewrites an operand through the current copy chains.
	resolve := func(v int32) int32 {
		for i := 0; i < 8; i++ { // chains are short; bound defensively
			a, ok := copies[v]
			if !ok {
				return v
			}
			v = a
		}
		return v
	}
	// kill invalidates facts about a redefined vreg.
	kill := func(d int32) {
		delete(consts, d)
		delete(copies, d)
		for k, a := range copies {
			if a == d {
				delete(copies, k)
			}
		}
	}
	rewriteOperands := func(inst *ir.Inst) {
		if inst.A >= 0 {
			if n := resolve(inst.A); n != inst.A {
				inst.A = n
				changed = true
			}
		}
		if inst.B >= 0 {
			if n := resolve(inst.B); n != inst.B {
				inst.B = n
				changed = true
			}
		}
		for i, a := range inst.Args {
			if n := resolve(a); n != a {
				inst.Args[i] = n
				changed = true
			}
		}
	}

	for i := range b.Insts {
		inst := &b.Insts[i]
		rewriteOperands(inst)
		switch inst.Op {
		case ir.Bin:
			ca, okA := consts[inst.A]
			cb, okB := consts[inst.B]
			if okA && okB {
				*inst = ir.Inst{Op: ir.Const, D: inst.D,
					Imm: types.EvalBinary(token.Kind(inst.Sub), ca, cb), Pos: inst.Pos}
				changed = true
			}
		case ir.Un:
			if ca, ok := consts[inst.A]; ok {
				*inst = ir.Inst{Op: ir.Const, D: inst.D, Imm: evalUnConst(inst.Sub, ca), Pos: inst.Pos}
				changed = true
			}
		case ir.Ext:
			if ca, ok := consts[inst.A]; ok {
				*inst = ir.Inst{Op: ir.Const, D: inst.D, Imm: extConst(ca, inst.Imm, inst.Sub == 1), Pos: inst.Pos}
				changed = true
			}
		case ir.Mov:
			if ca, ok := consts[inst.A]; ok {
				*inst = ir.Inst{Op: ir.Const, D: inst.D, Imm: ca, Pos: inst.Pos}
				changed = true
			}
		}
		// Update facts for the (possibly rewritten) definition.
		if inst.D >= 0 {
			kill(inst.D)
			switch inst.Op {
			case ir.Const:
				consts[inst.D] = inst.Imm
			case ir.Mov:
				if inst.A != inst.D {
					copies[inst.D] = inst.A
				}
			}
		}
	}
	// Terminator: resolve, and fold constant branches to jumps.
	if b.Term.Op == ir.Br {
		if n := resolve(b.Term.A); n != b.Term.A {
			b.Term.A = n
			changed = true
		}
		if c, ok := consts[b.Term.A]; ok {
			succ := b.Succ[0]
			if c == 0 {
				succ = b.Succ[1]
			}
			b.Term = ir.Inst{Op: ir.Jmp, Pos: b.Term.Pos}
			b.Succ = [2]int{succ, -1}
			changed = true
		}
	}
	return changed
}

// operandsOf appends every vreg an instruction reads to out.
func operandsOf(inst *ir.Inst, out []int32) []int32 {
	add := func(v int32) {
		if v >= 0 {
			out = append(out, v)
		}
	}
	switch inst.Op {
	case ir.Const, ir.LoadG:
		// no vreg operands
	case ir.Mov, ir.Un, ir.Ext, ir.Fetch, ir.LoadA, ir.StoreG, ir.SetArg, ir.Pin:
		add(inst.A)
	case ir.Bin, ir.StoreA:
		add(inst.A)
		add(inst.B)
	case ir.QOp:
		add(inst.A)
		add(inst.B)
	case ir.CallExt:
	case ir.Br:
		add(inst.A)
	}
	for _, a := range inst.Args {
		add(a)
	}
	return out
}

// pureDef reports whether an instruction's only effect is defining its
// destination vreg (safe to delete when the destination is unused).
func pureDef(inst *ir.Inst) bool {
	switch inst.Op {
	case ir.Const, ir.Mov, ir.Bin, ir.Un, ir.Ext, ir.Fetch, ir.LoadG, ir.LoadA:
		return true
	case ir.QOp:
		switch inst.Sub {
		case ir.QSize, ir.QGet, ir.QFront, ir.QFull:
			return true
		}
	}
	return false
}

// dce removes pure definitions whose results are never read, iterating the
// use counts until stable.
func dce(p *ir.Program) bool {
	nv := p.NumVReg
	used := make([]int32, nv)
	var scratch []int32
	for _, b := range p.Blocks {
		for i := range b.Insts {
			scratch = operandsOf(&b.Insts[i], scratch[:0])
			for _, v := range scratch {
				used[v]++
			}
		}
		scratch = operandsOf(&b.Term, scratch[:0])
		for _, v := range scratch {
			used[v]++
		}
	}
	// main's integer parameters are live by definition (seeded externally
	// and serialized into keys).
	nParams := 0
	for _, prm := range p.Params {
		if !prm.IsQueue {
			nParams++
		}
	}

	changed := false
	for _, b := range p.Blocks {
		kept := b.Insts[:0]
		for i := range b.Insts {
			inst := b.Insts[i]
			if inst.D >= int32(nParams) && used[inst.D] == 0 && pureDef(&inst) {
				// dead: drop it and release its operands' uses so chains
				// die on later iterations
				scratch = operandsOf(&inst, scratch[:0])
				for _, v := range scratch {
					used[v]--
				}
				changed = true
				continue
			}
			kept = append(kept, inst)
		}
		b.Insts = kept
	}
	return changed
}

func evalUnConst(sub uint8, a int64) int64 {
	switch token.Kind(sub) {
	case token.MINUS:
		return -a
	case token.TILDE:
		return ^a
	case token.NOT:
		if a == 0 {
			return 1
		}
		return 0
	}
	return a
}

func extConst(a, bits int64, signed bool) int64 {
	if bits >= 64 {
		return a
	}
	sh := uint(64 - bits)
	if signed {
		return a << sh >> sh
	}
	return int64(uint64(a) << sh >> sh)
}
