package compile

import (
	"fmt"
	"strings"
	"testing"

	"facile/internal/lang/ir"
	"facile/internal/lang/parser"
	"facile/internal/lang/types"
)

func compileSrc(t *testing.T, src string, opt Options) *ir.Program {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	checked, err := types.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Compile(checked, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func compileErr(t *testing.T, src, wantSub string) {
	t.Helper()
	astProg, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	checked, err := types.Check(astProg)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if _, err := Compile(checked, Options{}); err == nil {
		t.Fatalf("expected compile error containing %q", wantSub)
	} else if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err, wantSub)
	}
}

// figure7 is the paper's Figure 7 program, adapted to this dialect: the
// decode switch and address arithmetic are run-time static; register
// reads/writes and the branch predicate are dynamic.
const figure7 = `
token instruction[32] fields op 26:31, rd 21:25, rs1 16:20, i 15:15,
      simm 0:14, rs2 0:4, off16 0:15, brs1 21:25, brs2 16:20;
pat add = op == 1;
pat beq = op == 32;
val R = array(32){0};

fun main(pc) {
    val npc = pc + 4;
    switch (pc) {
      pat add:
        if (i) { R[rd] = R[rs1] + simm?sext(15); }
        else   { R[rd] = R[rs1] + R[rs2]; }
      pat beq:
        if (R[brs1] == R[brs2]) { npc = pc + 4 + off16?sext(16) * 4; }
    }
    set_args(npc);
}
`

func TestFigure7BindingTimes(t *testing.T) {
	p := compileSrc(t, figure7, Options{})
	if p.NumStatic == 0 || p.NumDynamic == 0 {
		t.Fatalf("degenerate division: %s", DumpBTA(p))
	}
	// The decode (Fetch of the rt-static pc) must be rt-static; the
	// register-file accesses must be dynamic.
	var fetchStatic, loadADynamic, storeADynamic bool
	var dynBr int
	for _, b := range p.Blocks {
		for _, in := range b.Insts {
			switch in.Op {
			case ir.Fetch:
				if in.BT == ir.BTStatic {
					fetchStatic = true
				}
			case ir.LoadA:
				if in.BT == ir.BTDynamic {
					loadADynamic = true
				}
			case ir.StoreA:
				if in.BT == ir.BTDynamic {
					storeADynamic = true
				}
			}
		}
		if b.DynTerm == ir.DTBr {
			dynBr++
		}
	}
	if !fetchStatic {
		t.Error("instruction fetch should be run-time static (paper: target text is rt-static)")
	}
	if !loadADynamic || !storeADynamic {
		t.Error("register file accesses should be dynamic (paper Figure 7 underlines)")
	}
	if dynBr == 0 {
		t.Error("the beq predicate should be a dynamic-result branch")
	}
	// npc is rt-static on every path (both assignments are rt-static), so
	// set_args must not need a dynamic-result test.
	for _, b := range p.Blocks {
		if b.DynTerm == ir.DTSetArg {
			t.Error("set_args(npc) should be run-time static here (npc never holds a dynamic value)")
		}
	}
}

func TestIndirectTargetMakesSetArgDynamic(t *testing.T) {
	p := compileSrc(t, `
val R = array(8){0};
fun main(pc) {
    val npc = R[pc & 7];   // dynamic: register-dependent target
    set_args(npc);
}
`, Options{})
	found := false
	for _, b := range p.Blocks {
		if b.DynTerm == ir.DTSetArg {
			found = true
		}
	}
	if !found {
		t.Fatal("register-dependent set_args must be a dynamic-result test (paper's init=nPC)")
	}
}

func TestPinForcesStatic(t *testing.T) {
	p := compileSrc(t, `
extern ext(0);
val out = 0;
fun main(x) {
    val v = ext()?pin();   // dynamic result pinned rt-static
    val w = v + 1;         // must be rt-static
    out = w;               // rt-static store (write-through)
    set_args(w);           // rt-static: no dynres
}
`, Options{})
	pins, setArgTests := 0, 0
	for _, b := range p.Blocks {
		if b.DynTerm == ir.DTPin {
			pins++
		}
		if b.DynTerm == ir.DTSetArg {
			setArgTests++
		}
	}
	if pins != 1 {
		t.Fatalf("expected exactly one pin test, got %d", pins)
	}
	if setArgTests != 0 {
		t.Fatal("set_args of a pinned value must be run-time static")
	}
}

func TestDynamicIntoStaticQueueRejected(t *testing.T) {
	compileErr(t, `
extern e(0);
fun main(q: queue(4, 1), x) {
    q?push(e());
    set_args(q, x);
}
`, "cannot store a dynamic value into a run-time static queue")
	compileErr(t, `
extern e(0);
val out = 0;
fun main(q: queue(4, 1), x) {
    val v = q?get(e(), 0);
    out = v;             // keep the read alive past dead-code elimination
    set_args(q, x);
}
`, "dynamic value used to address")
}

func TestLivenessOptionShrinksWriteThroughs(t *testing.T) {
	// g is written rt-static but never read dynamically; with the liveness
	// optimization its write-through disappears.
	src := `
val g = 0;
extern e(1);
fun main(x) {
    g = x * 2;     // rt-static store, never dynamically read
    e(x);
    set_args((x + 1) % 4);
}
`
	base := compileSrc(t, src, Options{})
	opt := compileSrc(t, src, Options{LiftLiveOnly: true})
	nwt := func(p *ir.Program) int {
		n := 0
		for _, b := range p.Blocks {
			for _, in := range b.Insts {
				if in.BT == ir.BTStaticWT {
					n++
				}
			}
		}
		return n
	}
	if nwt(base) == 0 {
		t.Fatal("baseline should write through the rt-static global store")
	}
	if nwt(opt) >= nwt(base) {
		t.Fatalf("liveness optimization did not shrink write-throughs: %d vs %d", nwt(opt), nwt(base))
	}
}

func TestInliningTerminatesAndDuplicates(t *testing.T) {
	// Two call sites of the same helper must produce duplicated
	// (polyvariant) code, not shared code.
	p1 := compileSrc(t, `
fun h(x) { return x * 2 + 1; }
fun main(p) { set_args(h(p)); }
`, Options{})
	p2 := compileSrc(t, `
fun h(x) { return x * 2 + 1; }
fun main(p) { set_args(h(p) + h(p + 1)); }
`, Options{})
	if p2.NumStatic+p2.NumDynamic <= p1.NumStatic+p1.NumDynamic {
		t.Fatal("second call site should add inlined code")
	}
}

func TestPlaceholderConstFolding(t *testing.T) {
	// A constant operand of a dynamic instruction must be a SrcConst, not
	// a recorded placeholder.
	p := compileSrc(t, `
val g = 0;
fun main(x) {
    g = g + 5;     // dynamic add: 5 must fold to a constant operand
    set_args(x);
}
`, Options{})
	foundConst := false
	for _, b := range p.Blocks {
		for _, di := range b.Dyn {
			if di.Op == ir.Bin && di.B.Kind == ir.SrcConst && di.B.Const == 5 {
				foundConst = true
			}
		}
	}
	if !foundConst {
		t.Fatal("constant operand was not folded into the dynamic segment")
	}
}

func TestDumpIsStable(t *testing.T) {
	p := compileSrc(t, figure7, Options{})
	d := p.Dump()
	if !strings.Contains(d, "b0:") || !strings.Contains(d, "ret") {
		t.Fatalf("dump looks wrong:\n%s", d[:200])
	}
}

func TestOptimizerShrinksAndPreservesStructure(t *testing.T) {
	src := `
val g = 0;
fun helper(a, b) { return a * 2 + b; }
fun main(x) {
    val c = 3 + 4;            // folds to 7
    val d = helper(c, 10);    // inlined, folds to 24
    if (1 < 2) { g = g + d; } // constant branch folds to a jump
    set_args((x + 1) % 8);
}
`
	opt := compileSrc(t, src, Options{})
	raw := compileSrc(t, src, Options{NoOptimize: true})
	if opt.NumStatic+opt.NumDynamic >= raw.NumStatic+raw.NumDynamic {
		t.Fatalf("optimizer did not shrink: %d vs %d insts",
			opt.NumStatic+opt.NumDynamic, raw.NumStatic+raw.NumDynamic)
	}
	// The constant branch must have been folded away.
	for _, b := range opt.Blocks {
		if b.Term.Op == ir.Br {
			// any remaining branches must not have constant conditions;
			// cheap structural check: source has exactly one non-constant
			// condition (none), so no Br should survive at all
			t.Fatalf("constant branch survived optimization")
		}
	}
}

func TestOptimizerSemanticsUnchanged(t *testing.T) {
	// Compile the full OOO description both ways; identical dynamic-test
	// structure is a strong signal nothing user-visible changed (full
	// behavioral equivalence is covered by the facsim suite).
	src := figure7
	a := compileSrc(t, src, Options{})
	b := compileSrc(t, src, Options{NoOptimize: true})
	count := func(p *ir.Program, k ir.DynTermKind) int {
		n := 0
		for _, blk := range p.Blocks {
			if blk.DynTerm == k {
				n++
			}
		}
		return n
	}
	for _, k := range []ir.DynTermKind{ir.DTBr, ir.DTSetArg, ir.DTPin, ir.DTRet} {
		if count(a, k) != count(b, k) {
			t.Fatalf("dynamic-test structure changed: kind %d: %d vs %d", k, count(a, k), count(b, k))
		}
	}
}

func TestDecisionTreeDispatch(t *testing.T) {
	// Eight one-field patterns -> binary-search decode. Correctness is
	// covered end-to-end by the facsim suite; here we check the tree
	// actually engages (code size far below the linear chain's).
	mk := func(nPats int) string {
		src := "token w[32] fields op 26:31, x 0:15, fill 16:25;\n"
		for i := 0; i < nPats; i++ {
			src += fmt.Sprintf("pat p%d = op == %d && (x == 1 || fill == 0);\n", i, i)
		}
		src += "val g = 0;\n"
		for i := 0; i < nPats; i++ {
			src += fmt.Sprintf("sem p%d { g = g + %d; }\n", i, i+1)
		}
		src += "fun main(pc) { pc?exec(); set_args(pc + 4); }\n"
		return src
	}
	p8 := compileSrc(t, mk(8), Options{})
	p16 := compileSrc(t, mk(16), Options{})
	grow := (p16.NumStatic + p16.NumDynamic) - (p8.NumStatic + p8.NumDynamic)
	// Per added pattern the tree adds one leaf (equality test + residual +
	// sem body ≈ 25 insts). The linear chain re-tests the full pattern per
	// case and re-extracts fields, growing noticeably faster; 26/pattern is
	// the regression canary.
	if grow > 26*8 {
		t.Fatalf("dispatch growth %d insts for 8 extra patterns — tree not engaged?", grow)
	}
}

func TestDecisionTreeFallsBackOnOverlap(t *testing.T) {
	// Two patterns sharing op==1 must keep declaration-order linear
	// dispatch (the tree requires distinct constants).
	src := `
token w[32] fields op 26:31, x 0:15;
pat a = op == 1 && x == 0;
pat b = op == 1;
pat c = op == 2;
pat d = op == 3;
val g = 0;
fun main(pc) {
    switch (pc) {
      pat a: g = g + 1;
      pat b: g = g + 2;
      pat c: g = g + 3;
      pat d: g = g + 4;
    }
    set_args(pc + 4);
}
`
	// Must compile (fallback), and both a-then-b ordering must be intact;
	// ordering is observable only at runtime, so here we just require
	// successful compilation.
	compileSrc(t, src, Options{})
}
