// Package parsim runs simulations in parallel without giving up
// determinism. It provides two building blocks:
//
//   - ForEach, a deterministic worker pool that shards independent work
//     items (e.g. the benchmarks of an fbench experiment) across
//     goroutines while keeping results in item order, and
//
//   - interval simulation (interval.go), which splits one workload into
//     instruction intervals using functional warm-up plus snapshot
//     hand-off and runs the detailed intervals concurrently on cloned
//     machines, merging statistics so the parallel result is
//     bit-identical to the sequential one.
package parsim

import (
	"context"
	"sync"
)

// ForEach invokes fn(i) for every i in [0, n), using up to `workers`
// goroutines. Each item's results must be written only to slots owned by
// that item (typically results[i]), which makes the output independent of
// scheduling. With workers <= 1 the calls run sequentially on the calling
// goroutine — by construction the reference ordering that the parallel
// path must reproduce.
//
// All items run even when some fail; the returned error is the one from
// the lowest-numbered failing item, again independent of scheduling.
func ForEach(n, workers int, fn func(i int) error) error {
	return ForEachCtx(context.Background(), n, workers, fn)
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done no
// further items start (items already running finish normally — fn is never
// interrupted mid-item). A canceled run returns ctx's error, which takes
// precedence over item errors since the item set that ran is scheduling-
// dependent once cancellation cuts it short.
func ForEachCtx(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			errs[i] = fn(i)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					errs[i] = fn(i)
				}
			}()
		}
	feed:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(next)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
