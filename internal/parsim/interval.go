package parsim

import (
	"context"
	"fmt"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
)

// Interval is one slice of a workload: the architectural state at its
// start (produced by functional warm-up) and the number of instructions
// the detailed simulator should commit from there.
type Interval struct {
	Index int
	Start *funcsim.State // owned by the plan; cloned per run
	Insts uint64
}

// Plan is an interval decomposition of a single workload.
type Plan struct {
	Intervals  []Interval
	TotalInsts uint64
}

// PlanIntervals runs the functional simulator over the whole program,
// capturing a deep-cloned architectural snapshot every `every` committed
// instructions. Each interval depends only on its start state, which is
// what lets the detailed intervals run concurrently yet deterministically.
func PlanIntervals(prog *loader.Program, every uint64) (*Plan, error) {
	if every == 0 {
		return nil, fmt.Errorf("parsim: interval length must be positive")
	}
	st := funcsim.NewState(prog)
	p := &Plan{}
	for !st.Halted {
		start := st.Clone()
		if err := st.RunOn(prog, st.InstCount+every); err != nil {
			return nil, fmt.Errorf("parsim: functional warm-up: %w", err)
		}
		n := st.InstCount - start.InstCount
		if n == 0 {
			return nil, fmt.Errorf("parsim: functional simulator made no progress at pc %#x", st.PC)
		}
		p.Intervals = append(p.Intervals, Interval{Index: len(p.Intervals), Start: start, Insts: n})
	}
	p.TotalInsts = st.InstCount
	if len(p.Intervals) == 0 {
		return nil, fmt.Errorf("parsim: program halts before executing any instruction")
	}
	return p, nil
}

// IntervalResult is the detailed simulation of one interval.
type IntervalResult struct {
	Index  int
	Insts  uint64 // committed by this interval (may overshoot to a step boundary)
	Cycles uint64
	Res    uarch.Result
	Stats  fastsim.Stats
}

// Merged is the deterministic combination of all interval results. Its
// deterministic fields are bit-identical for any worker count, because
// every interval is a pure function of its start snapshot and the merge
// walks intervals in index order.
type Merged struct {
	Intervals []IntervalResult

	Insts      uint64
	Cycles     uint64
	Output     []byte
	ExitStatus int64
	Stats      fastsim.Stats

	// ArchHash is the architectural content hash at program exit (from the
	// final interval), comparable across runs and worker counts.
	ArchHash string
}

// RunIntervals runs every interval of plan on its own cloned fast-forwarding
// simulator, up to `workers` concurrently, and merges the results in
// interval order. Each interval starts with a cold pipeline, cold caches,
// and an empty action cache seeded only by the interval's architectural
// snapshot; the last interval runs to program halt so the merged output and
// exit status are the complete program's.
func RunIntervals(cfg uarch.Config, prog *loader.Program, plan *Plan, opt fastsim.Options, workers int) (*Merged, error) {
	return RunIntervalsCtx(context.Background(), cfg, prog, plan, opt, workers)
}

// ctxChunk is how many instructions an interval commits between context
// checks in RunIntervalsCtx. Chunking is invisible to the results (Run
// budgets are cumulative), it only bounds cancellation latency.
const ctxChunk = 1 << 16

// RunIntervalsCtx is RunIntervals with cooperative cancellation: once ctx
// is done, no new interval starts and running intervals stop at the next
// chunk boundary; the partial results are discarded and ctx's error is
// returned. The merged result of an uncanceled run is bit-identical to
// RunIntervals.
func RunIntervalsCtx(ctx context.Context, cfg uarch.Config, prog *loader.Program, plan *Plan, opt fastsim.Options, workers int) (*Merged, error) {
	n := len(plan.Intervals)
	results := make([]IntervalResult, n)
	finals := make([]*funcsim.State, n)
	err := ForEachCtx(ctx, n, workers, func(i int) error {
		iv := plan.Intervals[i]
		ivOpt := opt
		if opt.Obs != nil {
			// One observability track per interval worker, so the exported
			// trace shows each interval as its own named Perfetto thread.
			ivOpt.Obs = opt.Obs.WithTrack(fmt.Sprintf("interval-%d", i))
		}
		s := fastsim.NewAt(cfg, prog, ivOpt, iv.Start.Clone())
		budget := iv.Insts // Run counts from the interval start
		if i == n-1 {
			budget = 0 // run the tail to halt for complete output
		}
		var res uarch.Result
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			target := s.Committed() + ctxChunk
			if budget != 0 && target > budget {
				target = budget
			}
			res = s.Run(target)
			if s.Done() || (budget != 0 && s.Committed() >= budget) {
				break
			}
		}
		if i == n-1 && !s.State().Halted {
			return fmt.Errorf("parsim: final interval did not halt after %d instructions", res.Insts)
		}
		results[i] = IntervalResult{
			Index:  i,
			Insts:  res.Insts,
			Cycles: res.Cycles,
			Res:    res,
			Stats:  s.Stats(),
		}
		finals[i] = s.State()
		return nil
	})
	if err != nil {
		return nil, err
	}
	m := &Merged{Intervals: results}
	for i := range results {
		r := &results[i]
		m.Insts += r.Insts
		m.Cycles += r.Cycles
		addStats(&m.Stats, &r.Stats)
	}
	last := finals[n-1]
	m.Output = last.Output
	m.ExitStatus = last.ExitStatus
	m.ArchHash = last.Hash()
	total := m.Stats.SlowInsts + m.Stats.FastInsts
	if total > 0 {
		m.Stats.FastForwardedPc = 100 * float64(m.Stats.FastInsts) / float64(total)
	}
	return m, nil
}

// addStats accumulates src into dst field-wise (FastForwardedPc is
// recomputed by the caller from the merged totals). Monotonic counters sum;
// CacheBytes and CacheEntries are point-in-time gauges of each interval's
// private action cache, so summing them would report phantom occupancy no
// cache ever had — gauges merge by maximum (the largest any interval's
// cache grew).
func addStats(dst, src *fastsim.Stats) {
	dst.SlowInsts += src.SlowInsts
	dst.FastInsts += src.FastInsts
	dst.Steps += src.Steps
	dst.Replays += src.Replays
	dst.Misses += src.Misses
	dst.KeyMisses += src.KeyMisses
	dst.CacheBytes = maxU64(dst.CacheBytes, src.CacheBytes)
	dst.CacheEntries = maxU64(dst.CacheEntries, src.CacheEntries)
	dst.TotalMemoBytes += src.TotalMemoBytes
	dst.CacheClears += src.CacheClears
	dst.Faults += src.Faults
	dst.Invalidations += src.Invalidations
	dst.DegradedSteps += src.DegradedSteps
	dst.WatchdogTrips += src.WatchdogTrips
	dst.SelfChecks += src.SelfChecks
	dst.SelfCheckDivergences += src.SelfCheckDivergences
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
