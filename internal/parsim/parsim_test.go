package parsim

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/workloads"
)

func TestForEachCoversAllItems(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		var ran [57]int32
		err := ForEach(len(ran), workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, n := range ran {
			if n != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachLowestError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(10, workers, func(i int) error {
			if i == 3 || i == 7 {
				return fmt.Errorf("item %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "item 3" {
			t.Fatalf("workers=%d: err = %v, want item 3", workers, err)
		}
	}
	if err := ForEach(0, 4, func(int) error { return errors.New("no") }); err != nil {
		t.Fatalf("empty ForEach: %v", err)
	}
}

// TestIntervalParallelDeterminism is the core parsim property: splitting a
// workload into intervals and simulating them on cloned machines yields
// bit-identical merged results for any worker count.
func TestIntervalParallelDeterminism(t *testing.T) {
	w, err := workloads.Get("126.gcc", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.Default()
	opt := fastsim.Options{Memoize: true}
	plan, err := PlanIntervals(w.Prog, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Intervals) < 3 {
		t.Fatalf("want a multi-interval plan, got %d intervals", len(plan.Intervals))
	}

	ref, err := RunIntervals(cfg, w.Prog, plan, opt, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The merged run must still be the real program: compare against the
	// whole-program fast-forwarding simulator's architectural results.
	whole := fastsim.New(cfg, w.Prog, opt)
	wholeRes := whole.Run(0)
	if ref.ExitStatus != wholeRes.ExitStatus || !bytes.Equal(ref.Output, wholeRes.Output) {
		t.Fatalf("interval simulation changed program results: exit %d output %q, want %d %q",
			ref.ExitStatus, ref.Output, wholeRes.ExitStatus, wholeRes.Output)
	}

	// Gauges merge by maximum, counters by sum: the merged point-in-time
	// fields must equal the largest per-interval value, never the sum (each
	// interval has a private cache, so a sum is occupancy no cache ever had).
	var maxBytes, maxEntries, sumReplays uint64
	for _, r := range ref.Intervals {
		maxBytes = maxU64(maxBytes, r.Stats.CacheBytes)
		maxEntries = maxU64(maxEntries, r.Stats.CacheEntries)
		sumReplays += r.Stats.Replays
	}
	if ref.Stats.CacheBytes != maxBytes || ref.Stats.CacheEntries != maxEntries {
		t.Fatalf("merged gauges (bytes=%d entries=%d) != per-interval maxima (%d, %d)",
			ref.Stats.CacheBytes, ref.Stats.CacheEntries, maxBytes, maxEntries)
	}
	if ref.Stats.Replays != sumReplays {
		t.Fatalf("merged replay counter %d != per-interval sum %d", ref.Stats.Replays, sumReplays)
	}

	for _, workers := range []int{1, 2, 8} {
		got, err := RunIntervals(cfg, w.Prog, plan, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: merged result differs from sequential\nseq: %+v\npar: %+v",
				workers, ref, got)
		}
		if got.Stats.CacheBytes != ref.Stats.CacheBytes ||
			got.Stats.CacheEntries != ref.Stats.CacheEntries {
			t.Fatalf("workers=%d: merged gauge fields differ from sequential", workers)
		}
	}
}

// TestPlanIntervals covers the decomposition invariants: intervals tile the
// whole instruction stream and each start state is independent.
func TestPlanIntervals(t *testing.T) {
	w, err := workloads.Get("129.compress", 1)
	if err != nil {
		t.Fatal(err)
	}
	const every = 5_000
	plan, err := PlanIntervals(w.Prog, every)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for i, iv := range plan.Intervals {
		if iv.Index != i {
			t.Fatalf("interval %d has index %d", i, iv.Index)
		}
		if iv.Start.InstCount != sum {
			t.Fatalf("interval %d starts at %d, want %d", i, iv.Start.InstCount, sum)
		}
		if i < len(plan.Intervals)-1 && iv.Insts != every {
			t.Fatalf("interior interval %d has %d insts, want %d", i, iv.Insts, every)
		}
		sum += iv.Insts
	}
	if sum != plan.TotalInsts {
		t.Fatalf("intervals cover %d insts, plan says %d", sum, plan.TotalInsts)
	}
	if _, err := PlanIntervals(w.Prog, 0); err == nil {
		t.Fatal("zero interval length accepted")
	}
}

func TestForEachCtxCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int32
		release := make(chan struct{})
		err := ForEachCtx(ctx, 100, workers, func(i int) error {
			if int(ran.Add(1)) == workers {
				cancel()       // cancel while mid-flight
				close(release) // then let in-flight items finish
			}
			<-release
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// In-flight items finish, no new items start after cancel (the
		// dispatcher may have handed each worker at most the one item it
		// was already blocked sending).
		if n := ran.Load(); n > int32(2*workers) {
			t.Fatalf("workers=%d: %d items ran after cancel", workers, n)
		}
	}

	// An uncanceled ForEachCtx behaves exactly like ForEach.
	var n atomic.Int32
	if err := ForEachCtx(context.Background(), 10, 4, func(int) error {
		n.Add(1)
		return nil
	}); err != nil || n.Load() != 10 {
		t.Fatalf("uncanceled: err=%v ran=%d, want nil/10", err, n.Load())
	}
}

func TestRunIntervalsCtxCanceled(t *testing.T) {
	w, err := workloads.Get("126.gcc", 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanIntervals(w.Prog, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunIntervalsCtx(ctx, uarch.Default(), w.Prog, plan,
		fastsim.Options{Memoize: true}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// With a live context the chunked loop must match RunIntervals exactly.
	a, err := RunIntervals(uarch.Default(), w.Prog, plan, fastsim.Options{Memoize: true}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIntervalsCtx(context.Background(), uarch.Default(), w.Prog, plan,
		fastsim.Options{Memoize: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Insts != b.Insts || a.Cycles != b.Cycles || a.ArchHash != b.ArchHash ||
		!bytes.Equal(a.Output, b.Output) {
		t.Fatalf("ctx run diverged: %d/%d/%s vs %d/%d/%s",
			a.Insts, a.Cycles, a.ArchHash, b.Insts, b.Cycles, b.ArchHash)
	}
}
