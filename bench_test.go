// Package repro's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (§6) as testing.B targets. Each benchmark
// reports simulated-instructions-per-second (the y-axis of Figures 11 and
// 12) and the table metrics as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the full evaluation. cmd/fbench renders the same data as the
// paper's tables; EXPERIMENTS.md records a reference run.
package repro_test

import (
	"fmt"
	"testing"

	descriptions "facile/facile"
	"facile/internal/arch/fastsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/core"
	"facile/internal/facsim"
	"facile/internal/isa/loader"
	"facile/internal/workloads"
)

// benchScale keeps `go test -bench=.` runs laptop-sized; cmd/fbench is the
// tool for bigger sweeps.
const benchScale = 3

// figure11Set is a representative slice of the suite for the per-simulator
// figure benchmarks (the full 18 run via BenchmarkFigure11Full and fbench).
var figure11Set = []string{"126.gcc", "129.compress", "099.go", "101.tomcatv", "107.mgrid", "145.fpppp"}

func getProg(b *testing.B, name string) *loader.Program {
	b.Helper()
	w, err := workloads.Get(name, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return w.Prog
}

func reportSimRate(b *testing.B, insts uint64) {
	b.ReportMetric(float64(insts)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Msim-inst/s")
}

// BenchmarkFigure11Baseline is Figure 11's "SimpleScalar" bar: the
// conventional out-of-order simulator.
func BenchmarkFigure11Baseline(b *testing.B) {
	for _, name := range figure11Set {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var insts uint64
			for i := 0; i < b.N; i++ {
				insts = ooo.Run(uarch.Default(), prog, 0).Insts
			}
			reportSimRate(b, insts)
		})
	}
}

// BenchmarkFigure11NoMemo is Figure 11's "without memoization" bar: the
// FastSim-role simulator with fast-forwarding disabled.
func BenchmarkFigure11NoMemo(b *testing.B) {
	for _, name := range figure11Set {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var insts uint64
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{Memoize: false})
				insts = s.Run(0).Insts
			}
			reportSimRate(b, insts)
		})
	}
}

// BenchmarkFigure11Memo is Figure 11's "with memoization" bar, and also
// reports Table 1 (% fast-forwarded) and Table 2 (MB memoized) metrics.
func BenchmarkFigure11Memo(b *testing.B) {
	for _, name := range figure11Set {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var insts uint64
			var st fastsim.Stats
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{
					Memoize: true, CacheCapBytes: 256 << 20,
				})
				insts = s.Run(0).Insts
				st = s.Stats()
			}
			reportSimRate(b, insts)
			b.ReportMetric(st.FastForwardedPc, "%fastfwd")
			b.ReportMetric(float64(st.TotalMemoBytes)/(1<<20), "MB-memoized")
		})
	}
}

// BenchmarkTable1 sweeps the full suite and reports the percentage of
// instructions fast-forwarded per benchmark (paper Table 1: >99% across
// the board, gcc worst).
func BenchmarkTable1(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var st fastsim.Stats
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{
					Memoize: true, CacheCapBytes: 256 << 20,
				})
				s.Run(0)
				st = s.Stats()
			}
			b.ReportMetric(st.FastForwardedPc, "%fastfwd")
		})
	}
}

// BenchmarkTable2 sweeps the full suite with an unlimited action cache and
// reports megabytes memoized (paper Table 2: go and gcc largest, compress
// smallest).
func BenchmarkTable2(b *testing.B) {
	for _, name := range workloads.Names() {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var st fastsim.Stats
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{Memoize: true})
				s.Run(0)
				st = s.Stats()
			}
			b.ReportMetric(float64(st.TotalMemoBytes)/(1<<20), "MB-memoized")
		})
	}
}

// figure12Set keeps the interpreted no-memo runs tractable.
var figure12Set = []string{"126.gcc", "129.compress", "101.tomcatv", "145.fpppp"}

// BenchmarkFigure12Memo is Figure 12's "with memoization" bar: the
// Facile-compiled out-of-order simulator with fast-forwarding.
func BenchmarkFigure12Memo(b *testing.B) {
	for _, name := range figure12Set {
		b.Run(name, func(b *testing.B) {
			prog := getProg(b, name)
			var insts uint64
			for i := 0; i < b.N; i++ {
				in, err := facsim.NewOOO(prog, facsim.Options{Memoize: true, CacheCapBytes: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			reportSimRate(b, insts)
		})
	}
}

// BenchmarkFigure12NoMemo is Figure 12's "without memoization" bar. The
// Facile slow simulator is interpreted here (the paper compiled to C), so
// this is the slowest benchmark in the harness; scale is reduced.
func BenchmarkFigure12NoMemo(b *testing.B) {
	for _, name := range figure12Set {
		b.Run(name, func(b *testing.B) {
			w, err := workloads.Get(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			var insts uint64
			for i := 0; i < b.N; i++ {
				in, err := facsim.NewOOO(w.Prog, facsim.Options{Memoize: false})
				if err != nil {
					b.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			reportSimRate(b, insts)
		})
	}
}

// BenchmarkCacheCap is the §6.1 ablation: cap the action cache and clear
// it when full; performance should degrade only gently as the cap shrinks
// well below the uncapped footprint.
func BenchmarkCacheCap(b *testing.B) {
	prog := getProg(b, "126.gcc")
	for _, cap := range []uint64{0, 4 << 20, 512 << 10, 64 << 10} {
		label := "unlimited"
		if cap > 0 {
			label = fmt.Sprintf("%dKiB", cap>>10)
		}
		b.Run(label, func(b *testing.B) {
			var insts uint64
			var clears uint64
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{Memoize: true, CacheCapBytes: cap})
				insts = s.Run(0).Insts
				clears = s.Stats().CacheClears
			}
			reportSimRate(b, insts)
			b.ReportMetric(float64(clears), "clears")
		})
	}
}

// BenchmarkAblationLiveness is the §6.3 (#3) ablation: the liveness
// optimization elides write-throughs of globals no dynamic reader
// observes, shrinking the action stream and cache.
func BenchmarkAblationLiveness(b *testing.B) {
	prog := getProg(b, "129.compress")
	for _, live := range []bool{false, true} {
		name := "baseline"
		if live {
			name = "liveness-opt"
		}
		b.Run(name, func(b *testing.B) {
			var insts, bytes uint64
			for i := 0; i < b.N; i++ {
				in, err := facsim.NewOOOCustom(prog,
					facsim.Options{Memoize: true},
					core.Options{LiftLiveOnly: live})
				if err != nil {
					b.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
				bytes = res.Stats.TotalMemoBytes
			}
			reportSimRate(b, insts)
			b.ReportMetric(float64(bytes)/(1<<20), "MB-memoized")
		})
	}
}

// BenchmarkAblationConstFold is the §6.3 (#5) ablation: compile-time
// constant folding / copy propagation / DCE in the Facile compiler.
func BenchmarkAblationConstFold(b *testing.B) {
	prog := getProg(b, "129.compress")
	for _, noopt := range []bool{false, true} {
		name := "optimized"
		if noopt {
			name = "no-constfold"
		}
		b.Run(name, func(b *testing.B) {
			var insts uint64
			for i := 0; i < b.N; i++ {
				in, err := facsim.NewOOOCustom(prog,
					facsim.Options{Memoize: true},
					core.Options{NoOptimize: noopt})
				if err != nil {
					b.Fatal(err)
				}
				res, err := in.Run(0)
				if err != nil {
					b.Fatal(err)
				}
				insts = res.Insts
			}
			reportSimRate(b, insts)
		})
	}
}

// BenchmarkCompile measures the Facile compiler itself over the bundled
// descriptions.
func BenchmarkCompile(b *testing.B) {
	for _, c := range []struct {
		name string
		src  string
	}{
		{"func", descriptions.FuncSim()},
		{"inorder", descriptions.InOrderSim()},
		{"ooo", descriptions.OOOSim()},
	} {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.CompileSource(c.src, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStepGranularity sweeps the step-function quantum (§2.1: "the
// simulator's author determines the amount of calculation performed in a
// step"): longer steps amortize lookups, shorter ones re-key more often.
func BenchmarkStepGranularity(b *testing.B) {
	prog := getProg(b, "101.tomcatv")
	for _, sc := range []int{8, 16, 48, 128} {
		b.Run(fmt.Sprintf("commits=%d", sc), func(b *testing.B) {
			var insts uint64
			var entries uint64
			for i := 0; i < b.N; i++ {
				s := fastsim.New(uarch.Default(), prog, fastsim.Options{Memoize: true, StepCommits: sc})
				insts = s.Run(0).Insts
				entries = s.Stats().CacheEntries
			}
			reportSimRate(b, insts)
			b.ReportMetric(float64(entries), "entries")
		})
	}
}
