// Command faciled is the Facile compiler driver: it parses, checks, and
// compiles a Facile description and reports the binding-time analysis
// results, the dynamic-segment structure, or a full IR dump.
//
// Usage:
//
//	faciled [-dump] [-bta] [-live] [-vet] file.fac [more.fac ...]
//
// Multiple files are concatenated (the conventional layout appends a step
// function to an ISA description, e.g. `faciled facile/svr32.fac
// facile/ooo.fac`). Errors are reported with file:line:col positions
// resolved across the concatenated files.
//
// -vet runs the fvet static-analysis suite over the file set as one
// compilation unit and exits (status 1 on error-severity findings); see
// cmd/fvet for the standalone tool with JSON/SARIF output and baselines.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"facile/internal/cli"
	"facile/internal/core"
	"facile/internal/lang/compile"
	"facile/internal/lang/ir"
	"facile/internal/lang/source"
	"facile/internal/lang/vet"
	"facile/internal/obs"
)

func main() {
	dump := flag.Bool("dump", false, "dump the compiled IR with binding times")
	bta := flag.Bool("bta", true, "print the binding-time analysis summary")
	live := flag.Bool("live", false, "enable the liveness write-through optimization (paper §6.3 #3)")
	runVet := flag.Bool("vet", false, "run the fvet static-analysis suite instead of compiling")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/vars, /debug/metrics and /debug/pprof on this address; keeps the process alive after compiling")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("faciled")
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: faciled [-dump] [-live] file.fac [more.fac ...]")
		os.Exit(2)
	}
	var rec *obs.Recorder
	var debugSrv *http.Server
	if *debugAddr != "" {
		rec = obs.NewRecorder(obs.Config{})
		srv, addr, err := obs.Serve(*debugAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faciled:", err)
			os.Exit(1)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "faciled: debug endpoint at http://%s/debug/vars\n", addr)
	}
	fs := source.NewSet()
	for _, f := range flag.Args() {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faciled:", err)
			os.Exit(1)
		}
		fs.Add(f, string(src))
	}
	if *runVet {
		res := vet.RunSet(fs, vet.Options{})
		if err := vet.WriteText(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "faciled:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "faciled: vet: %d error(s), %d warning(s), %d info(s)\n",
			res.Count(vet.SevError), res.Count(vet.SevWarning), res.Count(vet.SevInfo))
		if res.HasErrors() {
			os.Exit(1)
		}
		return
	}
	rec.Begin("faciled.compile")
	sim, err := core.CompileSource(fs.Cat(), core.Options{LiftLiveOnly: *live})
	rec.End("faciled.compile")
	if err != nil {
		if pos, msg := vet.ErrorPosition(err); pos.Line > 0 {
			fmt.Fprintf(os.Stderr, "faciled: %s: %s\n", fs.Resolve(pos), msg)
		} else {
			fmt.Fprintln(os.Stderr, "faciled:", err)
		}
		os.Exit(1)
	}
	p := sim.Prog
	if *bta {
		fmt.Printf("compiled ok: %s\n", compile.DumpBTA(p))
		nDyn, nPh, nForks := 0, 0, 0
		for _, b := range p.Blocks {
			nDyn += len(b.Dyn)
			nPh += b.NPh
			if b.DynTerm == ir.DTBr || b.DynTerm == ir.DTSetArg || b.DynTerm == ir.DTPin {
				nForks++
			}
		}
		fmt.Printf("dynamic segments: %d instructions, %d placeholders, %d dynamic-result tests\n",
			nDyn, nPh, nForks)
		fmt.Printf("globals=%d arrays=%d queues=%d externs=%d params=%d\n",
			len(p.Globals), len(p.Arrays), len(p.QueuesG), len(p.Externs), len(p.Params))
	}
	if *dump {
		fmt.Print(p.Dump())
	}
	if debugSrv != nil {
		// Stay up for scraping, but exit cleanly on SIGINT/SIGTERM instead
		// of blocking forever (the old `select {}` ignored signals sent to
		// a backgrounded process group and had to be SIGKILLed).
		fmt.Fprintln(os.Stderr, "faciled: serving debug endpoint (interrupt to exit)")
		ctx, stop := cli.ShutdownContext(context.Background())
		<-ctx.Done()
		stop()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = debugSrv.Shutdown(shCtx)
	}
}
