// Command faciled is the Facile compiler driver: it parses, checks, and
// compiles a Facile description and reports the binding-time analysis
// results, the dynamic-segment structure, or a full IR dump.
//
// Usage:
//
//	faciled [-dump] [-bta] [-live] file.fac [more.fac ...]
//
// Multiple files are concatenated (the conventional layout appends a step
// function to an ISA description, e.g. `faciled facile/svr32.fac
// facile/ooo.fac`).
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"facile/internal/cli"
	"facile/internal/core"
	"facile/internal/lang/compile"
	"facile/internal/lang/ir"
	"facile/internal/obs"
)

func main() {
	dump := flag.Bool("dump", false, "dump the compiled IR with binding times")
	bta := flag.Bool("bta", true, "print the binding-time analysis summary")
	live := flag.Bool("live", false, "enable the liveness write-through optimization (paper §6.3 #3)")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/vars, /debug/metrics and /debug/pprof on this address; keeps the process alive after compiling")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("faciled")
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: faciled [-dump] [-live] file.fac [more.fac ...]")
		os.Exit(2)
	}
	var rec *obs.Recorder
	var debugSrv *http.Server
	if *debugAddr != "" {
		rec = obs.NewRecorder(obs.Config{})
		srv, addr, err := obs.Serve(*debugAddr, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faciled:", err)
			os.Exit(1)
		}
		debugSrv = srv
		fmt.Fprintf(os.Stderr, "faciled: debug endpoint at http://%s/debug/vars\n", addr)
	}
	var sb strings.Builder
	for _, f := range flag.Args() {
		src, err := os.ReadFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faciled:", err)
			os.Exit(1)
		}
		sb.Write(src)
		sb.WriteString("\n")
	}
	rec.Begin("faciled.compile")
	sim, err := core.CompileSource(sb.String(), core.Options{LiftLiveOnly: *live})
	rec.End("faciled.compile")
	if err != nil {
		fmt.Fprintln(os.Stderr, "faciled:", err)
		os.Exit(1)
	}
	p := sim.Prog
	if *bta {
		fmt.Printf("compiled ok: %s\n", compile.DumpBTA(p))
		nDyn, nPh, nForks := 0, 0, 0
		for _, b := range p.Blocks {
			nDyn += len(b.Dyn)
			nPh += b.NPh
			if b.DynTerm == ir.DTBr || b.DynTerm == ir.DTSetArg || b.DynTerm == ir.DTPin {
				nForks++
			}
		}
		fmt.Printf("dynamic segments: %d instructions, %d placeholders, %d dynamic-result tests\n",
			nDyn, nPh, nForks)
		fmt.Printf("globals=%d arrays=%d queues=%d externs=%d params=%d\n",
			len(p.Globals), len(p.Arrays), len(p.QueuesG), len(p.Externs), len(p.Params))
	}
	if *dump {
		fmt.Print(p.Dump())
	}
	if debugSrv != nil {
		// Stay up for scraping, but exit cleanly on SIGINT/SIGTERM instead
		// of blocking forever (the old `select {}` ignored signals sent to
		// a backgrounded process group and had to be SIGKILLed).
		fmt.Fprintln(os.Stderr, "faciled: serving debug endpoint (interrupt to exit)")
		ctx, stop := cli.ShutdownContext(context.Background())
		<-ctx.Done()
		stop()
		shCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = debugSrv.Shutdown(shCtx)
	}
}
