// Command fsimd is the simulation job server: a long-lived daemon that
// queues simulation jobs over an HTTP/JSON API, runs them on a fixed
// worker pool, and shares warmed action caches between jobs of the same
// cache lineage, so repeated work fast-forwards from the first step
// instead of re-paying the specialization cost every run.
//
// Usage:
//
//	fsimd [-addr :8764] [-workers N] [-queue N] [-timeout D] [-chunk N]
//	      [-spool DIR] [-cache-dir DIR] [-cache-budget BYTES] [-debug-addr ADDR]
//	      [-register URL] [-advertise URL]
//
// With -register, the daemon joins an frouter fleet: it self-registers
// at startup, keeps the registration alive, and deregisters when
// draining so the router reroutes its lineages immediately. -advertise
// sets the URL the router reaches this worker at (defaults to
// 127.0.0.1 with the bound port — set it whenever the router is on
// another host).
//
// On SIGINT/SIGTERM the server drains: submissions get 503, running jobs
// checkpoint at their next chunk boundary, and everything unfinished is
// spooled to -spool (when set) for the next fsimd process to resume.
//
// With -cache-dir, warmed action caches also survive restarts: every
// parked cache is persisted to a crash-safe on-disk store
// (internal/cachestore), reloaded on demand by the next process, and
// invalidated automatically when the simulator that built it changes.
// Corrupt records are quarantined under DIR/quarantine and the affected
// lineage runs cold; /healthz reports "degraded" while quarantined
// evidence is present.
//
// See README.md ("Running the server") for the API and curl examples.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"facile/internal/cachestore"
	"facile/internal/cli"
	"facile/internal/fleet"
	"facile/internal/obs"
	"facile/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8764", "listen address for the job API")
	workers := flag.Int("workers", 2, "worker pool size")
	queueDepth := flag.Int("queue", 64, "bounded job queue depth (beyond it submissions get 429)")
	timeout := flag.Duration("timeout", 0, "default per-job timeout (0 = none)")
	chunk := flag.Uint64("chunk", 1<<16, "instructions between cancellation/drain checks")
	spool := flag.String("spool", "", "directory for drained-job spool files (resumed at startup)")
	cacheDir := flag.String("cache-dir", "",
		"directory for the persistent warm-cache store (off when empty)")
	cacheBudget := flag.Uint64("cache-budget", 0,
		"byte budget for the persistent store; LRU records beyond it are evicted (0 = unlimited)")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/vars, /debug/metrics and /debug/pprof on this extra address")
	register := flag.String("register", "",
		"frouter base URL to self-register with (e.g. http://router:8763)")
	advertise := flag.String("advertise", "",
		"base URL the router should reach this worker at (default http://127.0.0.1:<port> from -addr)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fsimd")
		return
	}

	rec := obs.NewRecorder(obs.Config{})

	var store *cachestore.Store
	if *cacheDir != "" {
		st, err := cachestore.Open(*cacheDir, cachestore.Options{
			BudgetBytes: *cacheBudget,
			Rec:         rec,
		})
		if err != nil {
			// Bottom rung of the degradation ladder: an unusable store
			// directory disables persistence, it does not take the daemon down.
			fmt.Fprintf(os.Stderr, "fsimd: cache store disabled: %v\n", err)
		} else {
			store = st
			if n := st.QuarantineCount(); n > 0 {
				fmt.Fprintf(os.Stderr, "fsimd: cache store has %d quarantined record(s) under %s\n",
					n, *cacheDir)
			}
			fmt.Fprintf(os.Stderr, "fsimd: persistent warm-cache store at %s (budget=%d)\n",
				*cacheDir, *cacheBudget)
		}
	}

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		ChunkInsts:     *chunk,
		Rec:            rec,
		Store:          store,
	})

	if *spool != "" {
		jobs, quarantined, err := serve.ReadSpool(*spool)
		if err != nil {
			die(err)
		}
		for _, q := range quarantined {
			fmt.Fprintf(os.Stderr, "fsimd: malformed spool file %s\n", q)
		}
		resumed := 0
		for _, rq := range jobs {
			if _, err := srv.Resubmit(rq); err != nil {
				// The spool file stays on disk for the next startup, so a
				// full queue degrades to a delayed resume, not lost work.
				fmt.Fprintf(os.Stderr, "fsimd: spooled job %s kept on disk: %v\n", rq.ID, err)
				continue
			}
			resumed++
			if err := serve.RemoveSpooled(*spool, rq.ID); err != nil {
				fmt.Fprintf(os.Stderr, "fsimd: spooled job %s: %v\n", rq.ID, err)
			}
		}
		if resumed > 0 {
			fmt.Fprintf(os.Stderr, "fsimd: resumed %d spooled job(s)\n", resumed)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			die(err)
		}
	}()
	if *debugAddr != "" {
		_, dbg, err := obs.Serve(*debugAddr, rec)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "fsimd: debug endpoint at http://%s/debug/vars\n", dbg)
	}
	fmt.Fprintf(os.Stderr, "fsimd version %s listening on http://%s (workers=%d queue=%d)\n",
		cli.Version(), ln.Addr(), *workers, *queueDepth)

	var unregister func()
	if *register != "" {
		self := *advertise
		if self == "" {
			_, port, err := net.SplitHostPort(ln.Addr().String())
			if err != nil {
				die(fmt.Errorf("cannot derive -advertise from %s: %w", ln.Addr(), err))
			}
			self = "http://127.0.0.1:" + port
		}
		unregister = fleet.KeepRegistered(nil, *register,
			fleet.RegisterRequest{URL: self},
			func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, "fsimd: "+format+"\n", args...)
			})
	}

	ctx, stop := cli.ShutdownContext(context.Background())
	defer stop()
	<-ctx.Done()
	stop() // a second signal now kills the process (escape from a wedged drain)

	if unregister != nil {
		unregister() // leave the fleet first so the router reroutes at once
	}
	fmt.Fprintln(os.Stderr, "fsimd: draining (running jobs checkpoint at the next chunk boundary)")
	requeued := srv.Drain()
	if *spool != "" && len(requeued) > 0 {
		if err := serve.WriteSpool(*spool, requeued); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "fsimd: spooled %d job(s) to %s\n", len(requeued), *spool)
	} else if len(requeued) > 0 {
		fmt.Fprintf(os.Stderr, "fsimd: dropped %d unfinished job(s) (no -spool directory)\n", len(requeued))
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shCtx)
	fmt.Fprintln(os.Stderr, "fsimd: bye")
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "fsimd:", err)
	os.Exit(1)
}
