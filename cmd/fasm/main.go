// Command fasm assembles SVR32 assembly and prints the disassembly and
// symbol table, or runs the program on the golden functional simulator.
//
// Usage:
//
//	fasm [-run] [-dis] file.s
package main

import (
	"flag"
	"fmt"
	"os"

	"facile/internal/arch/funcsim"
	"facile/internal/cli"
	"facile/internal/isa/asm"
)

func main() {
	runIt := flag.Bool("run", false, "run on the functional simulator")
	dis := flag.Bool("dis", false, "print disassembly")
	maxInsts := flag.Uint64("max", 100_000_000, "instruction limit for -run")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fasm")
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: fasm [-run] [-dis] file.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fasm:", err)
		os.Exit(1)
	}
	prog, err := asm.Assemble(flag.Arg(0), string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "fasm:", err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d instructions, %d data bytes, entry %#x\n",
		prog.Name, len(prog.Text), len(prog.Data), prog.Entry)
	if *dis {
		for _, line := range prog.Disassemble() {
			fmt.Println(line)
		}
	}
	if *runIt {
		_, res, err := funcsim.Run(prog, *maxInsts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fasm:", err)
			os.Exit(1)
		}
		os.Stdout.Write(res.Output)
		fmt.Printf("[%d instructions, exit %d]\n", res.Insts, res.ExitStatus)
	}
}
