package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/isa/loader"
	"facile/internal/obs"
	"facile/internal/parsim"
	"facile/internal/snapshot"
)

// ckpt carries the checkpoint/restore settings for one fsim run.
type ckpt struct {
	every   uint64 // save every N committed instructions/steps (0 = never)
	dir     string
	restore string // snapshot file to resume from ("" = fresh run)
	base    string // file-name stem for saved checkpoints

	rec         *obs.Recorder // observability recorder (nil = off)
	sampleEvery uint64
}

func (c ckpt) active() bool { return c.every > 0 || c.restore != "" }

// save frames, writes, and announces one checkpoint.
func (c ckpt) save(kind string, n uint64, state func(*snapshot.Writer) error) {
	w := snapshot.NewWriter()
	if err := state(w); err != nil {
		die(err)
	}
	path := filepath.Join(c.dir, fmt.Sprintf("%s-%012d.facsnap", c.base, n))
	hash, err := snapshot.WriteFile(path, kind, w)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "fsim: checkpoint %s (state %s)\n", path, hash[:16])
}

// open reads the restore file and verifies it was written by the same
// engine kind the user asked for.
func (c ckpt) open(kind string) *snapshot.Reader {
	gotKind, r, hash, err := snapshot.ReadFile(c.restore)
	if err != nil {
		die(err)
	}
	if gotKind != kind {
		die(fmt.Errorf("%s is a %q snapshot; -sim expects %q", c.restore, gotKind, kind))
	}
	fmt.Fprintf(os.Stderr, "fsim: restored %s (state %s)\n", c.restore, hash[:16])
	return r
}

// runFuncCkpt drives the golden functional simulator with checkpoints.
func runFuncCkpt(prog *loader.Program, c ckpt, t0 time.Time) {
	st := funcsim.NewState(prog)
	st.SetObs(c.rec, c.sampleEvery)
	if c.restore != "" {
		if err := st.LoadState(c.open(funcsim.SnapshotKind)); err != nil {
			die(err)
		}
	}
	for !st.Halted {
		var budget uint64
		if c.every > 0 {
			budget = st.InstCount + c.every
		}
		if err := st.RunOn(prog, budget); err != nil {
			die(err)
		}
		if st.Halted || c.every == 0 {
			break
		}
		c.save(funcsim.SnapshotKind, st.InstCount, func(w *snapshot.Writer) error {
			st.SaveState(w)
			return nil
		})
	}
	report(st.InstCount, 0, st.Output, time.Since(t0))
	fmt.Printf("final state %s\n", st.Hash()[:16])
}

// runOOOCkpt drives the conventional baseline with checkpoints.
func runOOOCkpt(prog *loader.Program, c ckpt, t0 time.Time) {
	s := ooo.New(uarch.Default(), prog)
	s.SetObs(c.rec, c.sampleEvery)
	if c.restore != "" {
		if err := s.LoadState(c.open(ooo.SnapshotKind)); err != nil {
			die(err)
		}
	}
	var res uarch.Result
	for {
		var budget uint64
		if c.every > 0 {
			budget = s.Committed() + c.every
		}
		res = s.Run(budget)
		if c.every == 0 || res.Insts < budget {
			break // halted (or ran dry) before the next boundary
		}
		c.save(ooo.SnapshotKind, s.Committed(), func(w *snapshot.Writer) error {
			s.SaveState(w)
			return nil
		})
	}
	report(res.Insts, res.Cycles, res.Output, time.Since(t0))
	fmt.Printf("IPC %.3f, %d mispredicts, %d L1D misses\n", res.IPC(), res.Mispredicts, res.L1DMisses)
	fmt.Printf("final state %s\n", s.Hash()[:16])
}

// runFastsimCkpt drives the fast-forwarding simulator with checkpoints.
// The action cache is not part of a snapshot, so a restored run re-warms
// it: timing and outputs match the uninterrupted run bit-for-bit while the
// slow/replayed split differs.
func runFastsimCkpt(prog *loader.Program, opt fastsim.Options, c ckpt, t0 time.Time) (*fastsim.Sim, uarch.Result) {
	s := fastsim.New(uarch.Default(), prog, opt)
	if c.restore != "" {
		if err := s.LoadState(c.open(fastsim.SnapshotKind)); err != nil {
			die(err)
		}
	}
	var res uarch.Result
	for {
		var budget uint64
		if c.every > 0 {
			budget = s.Committed() + c.every
		}
		res = s.Run(budget)
		if c.every == 0 || s.Done() {
			break
		}
		c.save(fastsim.SnapshotKind, s.Committed(), func(w *snapshot.Writer) error {
			return s.SaveState(w)
		})
	}
	return s, res
}

// runFacCkpt drives a Facile-compiled simulator with checkpoints (the
// boundary unit is Facile steps, not target instructions).
func runFacCkpt(in *facsim.Instance, c ckpt, t0 time.Time) facsim.Result {
	if c.restore != "" {
		if err := in.LoadState(c.open(in.Kind)); err != nil {
			die(err)
		}
	}
	steps := func() uint64 {
		st := in.M.Stats()
		return st.SlowSteps + st.Replays
	}
	for !in.M.Done() {
		var budget uint64
		if c.every > 0 {
			budget = steps() + c.every
		}
		if err := in.M.Run(budget); err != nil {
			die(err)
		}
		if in.M.Done() || c.every == 0 {
			break
		}
		c.save(in.Kind, steps(), func(w *snapshot.Writer) error {
			in.SaveState(w)
			return nil
		})
	}
	res, err := in.Run(0) // program done; collects results only
	if err != nil {
		die(err)
	}
	return res
}

// runParsim splits the workload into instruction intervals via functional
// warm-up and runs the detailed intervals concurrently on cloned machines.
// The merged deterministic results are bit-identical for any worker count.
func runParsim(prog *loader.Program, opt fastsim.Options, workers int, interval uint64, t0 time.Time) {
	plan, err := parsim.PlanIntervals(prog, interval)
	if err != nil {
		die(err)
	}
	warm := time.Since(t0)
	m, err := parsim.RunIntervals(uarch.Default(), prog, plan, opt, workers)
	if err != nil {
		die(err)
	}
	report(m.Insts, m.Cycles, m.Output, time.Since(t0))
	st := m.Stats
	fmt.Printf("intervals: %d × %d insts, %d workers, warm-up %v\n",
		len(plan.Intervals), interval, workers, warm.Round(time.Millisecond))
	fmt.Printf("fast-forwarded %.3f%%, %d misses, %.1f MB memoized, %d clears\n",
		st.FastForwardedPc, st.Misses, float64(st.TotalMemoBytes)/(1<<20), st.CacheClears)
	fmt.Printf("final state %s\n", m.ArchHash[:16])
}
