package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/isa/loader"
	"facile/internal/parsim"
	"facile/internal/runcfg"
	"facile/internal/snapshot"
)

// ckpt carries the checkpoint/restore settings for one fsim run.
type ckpt struct {
	every   uint64 // save every N committed instructions/steps (0 = never)
	dir     string
	restore string // snapshot file to resume from ("" = fresh run)
	base    string // file-name stem for saved checkpoints
}

func (c ckpt) active() bool { return c.every > 0 || c.restore != "" }

// save frames, writes, and announces one checkpoint.
func (c ckpt) save(kind string, n uint64, state func(*snapshot.Writer) error) {
	w := snapshot.NewWriter()
	if err := state(w); err != nil {
		die(err)
	}
	path := filepath.Join(c.dir, fmt.Sprintf("%s-%012d.facsnap", c.base, n))
	hash, err := snapshot.WriteFile(path, kind, w)
	if err != nil {
		die(err)
	}
	fmt.Fprintf(os.Stderr, "fsim: checkpoint %s (state %s)\n", path, hash[:16])
}

// open reads the restore file and verifies it was written by the same
// engine kind the user asked for.
func (c ckpt) open(kind string) *snapshot.Reader {
	gotKind, r, hash, err := snapshot.ReadFile(c.restore)
	if err != nil {
		die(err)
	}
	if gotKind != kind {
		die(fmt.Errorf("%s is a %q snapshot; -sim expects %q", c.restore, gotKind, kind))
	}
	fmt.Fprintf(os.Stderr, "fsim: restored %s (state %s)\n", c.restore, hash[:16])
	return r
}

// runCkpt drives any engine to completion through the runcfg protocol:
// restore first if asked, then run in c.every-sized chunks, saving a
// snapshot at each boundary. With checkpointing inactive it is a single
// uninterrupted run. For memoizing engines the action cache is not part of
// a snapshot, so a restored run re-warms it: timing and outputs match the
// uninterrupted run bit-for-bit while the slow/replayed split differs.
func runCkpt(r runcfg.Runner, c ckpt) runcfg.Result {
	if c.restore != "" {
		if err := r.Load(c.open(r.SnapshotKind())); err != nil {
			die(err)
		}
	}
	for !r.Done() {
		var budget uint64
		if c.every > 0 {
			budget = r.Progress() + c.every
		}
		if err := r.Run(budget); err != nil {
			die(err)
		}
		if r.Done() || c.every == 0 {
			break
		}
		c.save(r.SnapshotKind(), r.Progress(), r.Save)
	}
	return r.Result()
}

// runParsim splits the workload into instruction intervals via functional
// warm-up and runs the detailed intervals concurrently on cloned machines.
// The merged deterministic results are bit-identical for any worker count.
func runParsim(prog *loader.Program, opt fastsim.Options, workers int, interval uint64, t0 time.Time) {
	plan, err := parsim.PlanIntervals(prog, interval)
	if err != nil {
		die(err)
	}
	warm := time.Since(t0)
	m, err := parsim.RunIntervals(uarch.Default(), prog, plan, opt, workers)
	if err != nil {
		die(err)
	}
	report(m.Insts, m.Cycles, m.Output, time.Since(t0))
	st := m.Stats
	fmt.Printf("intervals: %d × %d insts, %d workers, warm-up %v\n",
		len(plan.Intervals), interval, workers, warm.Round(time.Millisecond))
	fmt.Printf("fast-forwarded %.3f%%, %d misses, %.1f MB memoized, %d clears\n",
		st.FastForwardedPc, st.Misses, float64(st.TotalMemoBytes)/(1<<20), st.CacheClears)
	fmt.Printf("final state %s\n", m.ArchHash[:16])
}
