// Command fsim runs an SVR32 program (a bundled benchmark or an assembly
// file) on any of the simulators in this repository.
//
// Usage:
//
//	fsim -sim func|inorder|ooo|fac-func|fac-inorder|fac-ooo|fastsim [-memo] \
//	     [-selfcheck] [-checkpoint-every N [-checkpoint-dir D]] [-restore FILE] \
//	     [-parsim N [-interval M]] (-bench 126.gcc [-scale N] | file.s)
//
// -selfcheck re-executes every replayable step on the slow simulator,
// verifying the action cache against ground truth; a divergence exits
// non-zero (status 3).
//
// -checkpoint-every saves a versioned snapshot of the complete simulator
// state every N committed instructions (Facile steps for fac-*); -restore
// resumes from one, producing bit-identical results to the uninterrupted
// run. -parsim splits the workload into -interval-sized slices via
// functional warm-up and simulates them concurrently on cloned machines.
//
// fac-* runs first vet the bundled Facile description (the fvet analyzer
// suite) and refuse to start on error-severity findings; -no-vet skips
// the preflight.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"facile/internal/arch/fastsim"
	"facile/internal/bench"
	"facile/internal/cli"
	"facile/internal/facsim"
	"facile/internal/isa/asm"
	"facile/internal/isa/loader"
	"facile/internal/obs"
	"facile/internal/runcfg"
	"facile/internal/workloads"
)

func main() {
	simName := flag.String("sim", "func", "simulator: "+strings.Join(runcfg.Engines(), ", "))
	validate := flag.Bool("validate", false, "cross-validate all simulators on the chosen benchmark")
	memo := flag.Bool("memo", false, "enable fast-forwarding (fastsim and fac-* simulators)")
	benchName := flag.String("bench", "", "run a bundled benchmark by name")
	scale := flag.Int("scale", 1, "benchmark scale factor")
	capMB := flag.Uint64("cap", 0, "action cache cap in MB (0 = unlimited)")
	selfCheck := flag.Bool("selfcheck", false,
		"re-execute every replayable step on the slow simulator and verify the action cache (implies -memo)")
	ckEvery := flag.Uint64("checkpoint-every", 0,
		"save a snapshot every N committed instructions (fac-*: Facile steps); 0 = never")
	ckDir := flag.String("checkpoint-dir", ".", "directory for saved snapshots")
	restorePath := flag.String("restore", "", "resume from a snapshot file (same -sim/-bench/-scale as the saving run)")
	parWorkers := flag.Int("parsim", 0,
		"run parallel interval simulation with N workers (requires -sim fastsim)")
	parInterval := flag.Uint64("interval", 1<<20, "interval length in instructions for -parsim")
	traceOut := flag.String("trace-out", "",
		"write a Chrome trace_event JSON file of the run (open in Perfetto / chrome://tracing)")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/vars, /debug/metrics and /debug/pprof on this address during the run (e.g. :8080)")
	sampleEvery := flag.Uint64("sample-every", 0,
		"instructions between observability samples (0 = default)")
	noVet := flag.Bool("no-vet", false,
		"skip the static-analysis preflight of the bundled Facile description (fac-* simulators)")
	replay := flag.String("replay", runcfg.ReplayCompiled,
		"memoized replay dispatch: "+strings.Join(runcfg.ReplayModes(), " or "))
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fsim")
		return
	}
	if *selfCheck {
		*memo = true
	}

	var rec *obs.Recorder
	if *traceOut != "" || *debugAddr != "" {
		rec = obs.NewRecorder(obs.Config{})
	}
	if *debugAddr != "" {
		_, addr, err := obs.Serve(*debugAddr, rec)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "fsim: debug endpoint at http://%s/debug/vars\n", addr)
	}
	// Written on normal exit only; die() paths skip the trace (the run did
	// not finish, so its event stream would be misleading anyway).
	defer writeTrace(rec, *traceOut)

	var prog *loader.Program
	switch {
	case *benchName != "":
		w, err := workloads.Get(*benchName, *scale)
		if err != nil {
			die(err)
		}
		prog = w.Prog
	case flag.NArg() == 1:
		src, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			die(err)
		}
		prog, err = asm.Assemble(flag.Arg(0), string(src))
		if err != nil {
			die(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: fsim -sim NAME (-bench NAME | file.s)")
		os.Exit(2)
	}

	if *validate {
		if *benchName == "" {
			die(fmt.Errorf("-validate requires -bench"))
		}
		if err := bench.ValidateBenchmark(*benchName, *scale); err != nil {
			die(err)
		}
		fmt.Printf("%s @ scale %d: all simulators agree (outputs, exits, memoized cycle counts)\n",
			*benchName, *scale)
		return
	}

	cfg := runcfg.Config{
		Engine:        *simName,
		Memoize:       *memo,
		CacheCapBytes: *capMB << 20,
		Replay:        *replay,
		Obs:           rec,
		SampleEvery:   *sampleEvery,
	}
	if *selfCheck {
		cfg.SelfCheck = 1.0
	}
	ck := ckpt{every: *ckEvery, dir: *ckDir, restore: *restorePath, base: *simName}
	if *benchName != "" {
		ck.base = *simName + "-" + *benchName
	}

	t0 := time.Now()
	if *parWorkers > 0 {
		if *simName != runcfg.EngineFastsim {
			die(fmt.Errorf("-parsim requires -sim fastsim"))
		}
		opt := fastsim.Options{Memoize: *memo, CacheCapBytes: cfg.CacheCapBytes,
			ReplayInterp: *replay == runcfg.ReplayInterp,
			Obs:          rec, SampleEvery: *sampleEvery}
		runParsim(prog, opt, *parWorkers, *parInterval, t0)
		return
	}

	if !*noVet {
		if sum, ok := facsim.Preflight(*simName); ok && !sum.OK() {
			for _, f := range sum.ErrorFindings {
				fmt.Fprintln(os.Stderr, "fsim: vet:", f)
			}
			die(fmt.Errorf("%s: %d error-severity vet finding(s) in the bundled description; rerun with -no-vet to override",
				*simName, sum.Errors))
		}
	}

	r, err := runcfg.New(prog, cfg)
	if err != nil {
		die(err)
	}
	res := runCkpt(r, ck)
	report(res.Insts, res.Cycles, res.Output, time.Since(t0))
	summarize(r, res, cfg, ck)
}

// summarize prints the engine-specific closing lines after the generic
// instruction/cycle report.
func summarize(r runcfg.Runner, res runcfg.Result, cfg runcfg.Config, ck ckpt) {
	st := r.Stats()
	switch {
	case cfg.Engine == runcfg.EngineOOO:
		fmt.Printf("IPC %.3f, %d mispredicts, %d L1D misses\n",
			res.IPC(), res.Mispredicts, res.L1DMisses)
	case cfg.Engine == runcfg.EngineFastsim:
		fmt.Printf("fast-forwarded %.3f%%, %d misses, %.1f MB memoized, %d clears\n",
			st.FastForwardedPc, st.Misses, float64(st.TotalMemoBytes)/(1<<20), st.CacheClears)
	case strings.HasPrefix(cfg.Engine, "fac-"):
		fmt.Printf("steps: %d slow, %d replayed, %d recoveries, %.1f MB memoized\n",
			st.SlowSteps, st.Replays, st.Misses, float64(st.TotalMemoBytes)/(1<<20))
	}
	selfChecking := cfg.SelfCheck > 0 && cfg.Memoizing()
	if st.Faults != 0 || st.DegradedSteps != 0 || selfChecking {
		fmt.Printf("faults: %d detected, %d invalidations, %d degraded steps, %d watchdog trips\n",
			st.Faults, st.Invalidations, st.DegradedSteps, st.WatchdogTrips)
	}
	if ck.active() {
		if h, ok := r.(interface{ Hash() string }); ok {
			fmt.Printf("final state %s\n", h.Hash()[:16])
		}
	}
	if selfChecking {
		fmt.Printf("self-check: %d steps verified, %d divergences\n",
			st.SelfChecks, st.SelfCheckDivergences)
		if st.SelfCheckDivergences != 0 {
			fmt.Fprintf(os.Stderr, "fsim: self-check divergence: %v\n", r.LastFault())
			os.Exit(3)
		}
	}
}

func report(insts, cycles uint64, output []byte, d time.Duration) {
	os.Stdout.Write(output)
	if cycles > 0 {
		fmt.Printf("[%d instructions, %d cycles, %v, %.2f Msim-inst/s]\n",
			insts, cycles, d.Round(time.Millisecond), float64(insts)/d.Seconds()/1e6)
	} else {
		fmt.Printf("[%d instructions, %v, %.2f Msim-inst/s]\n",
			insts, d.Round(time.Millisecond), float64(insts)/d.Seconds()/1e6)
	}
}

// writeTrace dumps the recorder's event ring and sampled time series as a
// Chrome trace_event JSON file (Perfetto / chrome://tracing loadable).
func writeTrace(rec *obs.Recorder, path string) {
	if rec == nil || path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		die(err)
	}
	if err := rec.WriteChromeTrace(f); err != nil {
		f.Close()
		die(err)
	}
	if err := f.Close(); err != nil {
		die(err)
	}
	var n uint64
	for _, c := range rec.Totals() {
		n += c
	}
	fmt.Fprintf(os.Stderr, "fsim: wrote %s (%d lifecycle events, %d samples)\n",
		path, n, len(rec.Samples()))
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "fsim:", err)
	os.Exit(1)
}
