// Command frouter is the fleet front-end: it speaks the same HTTP/JSON
// API as a single fsimd, but routes each submission across a fleet of
// registered fsimd workers with warm-cache affinity — jobs of the same
// cache lineage land on the worker already holding that lineage's
// warmed action cache, so the fleet pays one cold start per lineage,
// not one per worker.
//
// Usage:
//
//	frouter [-addr :8763] [-heartbeat 500ms] [-fail-after 2] [-vnodes 64]
//	        [-shadow-budget BYTES] [-debug-addr ADDR]
//
// Workers self-register (fsimd -register http://router:8763
// -advertise http://worker:8764) and are health-checked every
// -heartbeat; a worker that fails -fail-after consecutive probes is
// ejected, its hash range is reassigned, its warm caches are migrated
// to the successors, and its in-flight jobs are resubmitted under their
// original fleet IDs.
//
// Fleet-only endpoints on top of the fsimd surface:
//
//	GET /v1/fleet     topology, queue depths, lineage assignments
//	GET /v1/metrics   fleet-wide merge of every worker's metrics
//
// See README.md ("Running a fleet") for a worked 3-worker example.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"facile/internal/cli"
	"facile/internal/fleet"
	"facile/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8763", "listen address for the fleet API")
	heartbeat := flag.Duration("heartbeat", 500*time.Millisecond, "worker health-check interval")
	failAfter := flag.Int("fail-after", 2, "consecutive failed probes before a worker is ejected")
	vnodes := flag.Int("vnodes", fleet.DefaultVNodes, "virtual nodes per worker on the hash ring")
	shadowBudget := flag.Int64("shadow-budget", 0,
		"byte budget for the in-memory warm-cache shadow used for dead-worker migration (0 = default 256 MiB, negative disables)")
	debugAddr := flag.String("debug-addr", "",
		"serve /debug/vars, /debug/metrics and /debug/pprof on this extra address")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("frouter")
		return
	}

	rec := obs.NewRecorder(obs.Config{})
	router := fleet.NewRouter(fleet.Config{
		HeartbeatEvery: *heartbeat,
		FailAfter:      *failAfter,
		VNodes:         *vnodes,
		ShadowBudget:   *shadowBudget,
		Rec:            rec,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		die(err)
	}
	httpSrv := &http.Server{Handler: router.Handler()}
	go func() {
		if err := httpSrv.Serve(ln); err != nil && err != http.ErrServerClosed {
			die(err)
		}
	}()
	if *debugAddr != "" {
		_, dbg, err := obs.Serve(*debugAddr, rec)
		if err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "frouter: debug endpoint at http://%s/debug/vars\n", dbg)
	}
	fmt.Fprintf(os.Stderr, "frouter version %s listening on http://%s (heartbeat=%s fail-after=%d vnodes=%d)\n",
		cli.Version(), ln.Addr(), *heartbeat, *failAfter, *vnodes)

	ctx, stop := cli.ShutdownContext(context.Background())
	defer stop()
	<-ctx.Done()
	stop()

	fmt.Fprintln(os.Stderr, "frouter: shutting down")
	shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shCtx)
	router.Close()
	fmt.Fprintln(os.Stderr, "frouter: bye")
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "frouter:", err)
	os.Exit(1)
}
