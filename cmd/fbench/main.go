// Command fbench regenerates the paper's evaluation: Figure 11, Table 1,
// Table 2, Figure 12, the description-size report, and the
// cache-capacity ablation.
//
// Usage:
//
//	fbench -exp fig11|table1|table2|fig12|loc|cachecap|all [-scale N] [-bench name,...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"facile/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig11, table1, table2, fig12, loc, cachecap, all")
	scale := flag.Int("scale", 10, "workload scale factor")
	benches := flag.String("bench", "", "comma-separated benchmark names (default: full suite)")
	capName := flag.String("capbench", "126.gcc", "benchmark for the cache-capacity ablation")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	if *benches != "" {
		cfg.Names = strings.Split(*benches, ",")
	}

	var run func(string) error
	run = func(name string) error {
		switch name {
		case "fig11", "table1":
			rows, err := bench.Figure11(cfg)
			if err != nil {
				return err
			}
			if name == "fig11" {
				bench.WriteFigure(os.Stdout, "Figure 11: FastSim-role simulator vs conventional baseline", rows)
			} else {
				bench.WriteTable1(os.Stdout, rows)
			}
		case "table2":
			rows, err := bench.Table2(cfg)
			if err != nil {
				return err
			}
			bench.WriteTable2(os.Stdout, rows)
		case "fig12":
			rows, err := bench.Figure12(cfg)
			if err != nil {
				return err
			}
			bench.WriteFigure(os.Stdout, "Figure 12: Facile-compiled OOO simulator vs conventional baseline", rows)
		case "loc":
			bench.WriteLoC(os.Stdout)
		case "cachecap":
			caps := []uint64{0, 16 << 20, 4 << 20, 1 << 20, 256 << 10, 64 << 10}
			pts, err := bench.CacheCapSweep(*capName, cfg.Scale, caps)
			if err != nil {
				return err
			}
			bench.WriteCapSweep(os.Stdout, *capName, pts)
		case "all":
			for _, e := range []string{"fig11", "table1", "table2", "fig12", "cachecap", "loc"} {
				if err := run(e); err != nil {
					return err
				}
				fmt.Println()
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "fbench:", err)
		os.Exit(1)
	}
}
