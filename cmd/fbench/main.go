// Command fbench regenerates the paper's evaluation: Figure 11, Table 1,
// Table 2, Figure 12, the description-size report, and the
// cache-capacity ablation.
//
// Usage:
//
//	fbench -exp fig11|table1|table2|fig12|loc|cachecap|all
//	       [-scale N] [-bench name,...] [-parallel N] [-json PATH]
//	fbench -bench-out BENCH_1.json [-scale N] [-bench name,...] [-parallel N]
//	fbench -server http://HOST:PORT [-engine NAME] [-memoize]
//	       [-scale N] [-bench name,...]
//
// -bench-out writes the canonical benchmark artifact: the per-workload
// Msim-inst/s table plus a warm-vs-cold-restart record per workload, in
// which the cache round-trips through a real on-disk store (the fsimd
// restart scenario) before warming the second run.
//
// -parallel shards the suite's benchmarks across N goroutines; every
// deterministic output field is bit-identical to a sequential run, only
// the host-timing (MIPS, wall-clock) fields vary. -json writes the full
// machine-readable report alongside the text output.
//
// -server switches to client mode: each selected benchmark is submitted
// as a job to a running fsimd and the per-job results (including the
// warm-start and fast-share columns) are reported when they finish.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"facile/internal/bench"
	"facile/internal/cli"
	"facile/internal/runcfg"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig11, table1, table2, fig12, loc, cachecap, all")
	scale := flag.Int("scale", 10, "workload scale factor")
	benches := flag.String("bench", "", "comma-separated benchmark names (default: full suite)")
	capName := flag.String("capbench", "126.gcc", "benchmark for the cache-capacity ablation")
	parallel := flag.Int("parallel", 1, "benchmarks simulated concurrently")
	jsonPath := flag.String("json", "", "write a machine-readable report to this path")
	benchOut := flag.String("bench-out", "",
		"write the canonical per-workload rate + warm-restart artifact (BENCH_<n>.json) to this path")
	compareTo := flag.String("bench-compare", "",
		"with -bench-out: gate the fresh artifact against this baseline (exit 1 on regression)")
	noise := flag.Float64("noise", bench.DefaultNoiseBand,
		"allowed fractional throughput loss for -bench-compare (deterministic counts must match exactly)")
	replay := flag.String("replay", runcfg.ReplayCompiled,
		"memoized replay dispatch: "+strings.Join(runcfg.ReplayModes(), " or "))
	server := flag.String("server", "", "fsimd base URL; submit jobs there instead of simulating locally")
	engine := flag.String("engine", runcfg.EngineFastsim, "engine for -server jobs")
	memoize := flag.Bool("memoize", true, "memoize -server jobs (required for warm-cache sharing)")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fbench")
		return
	}
	if *server != "" {
		var names []string
		if *benches != "" {
			names = strings.Split(*benches, ",")
		}
		if err := runClient(*server, *engine, names, *scale, *memoize); err != nil {
			fmt.Fprintln(os.Stderr, "fbench:", err)
			os.Exit(1)
		}
		return
	}

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Workers = *parallel
	cfg.Replay = *replay
	if *benches != "" {
		cfg.Names = strings.Split(*benches, ",")
	}

	if *benchOut != "" {
		out, err := bench.RunBenchOut(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fbench:", err)
			os.Exit(1)
		}
		bench.WriteFigure(os.Stdout, "Per-workload simulation rates", out.Rows)
		fmt.Println()
		bench.WriteWarmRestart(os.Stdout, out.WarmRestart)
		if err := out.WriteFile(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "fbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fbench: wrote %s\n", *benchOut)
		if *compareTo != "" {
			baseline, err := bench.ReadBenchOut(*compareTo)
			if err != nil {
				fmt.Fprintln(os.Stderr, "fbench:", err)
				os.Exit(1)
			}
			if violations := bench.Compare(baseline, out, *noise); len(violations) > 0 {
				fmt.Fprintf(os.Stderr, "fbench: regression gate vs %s FAILED:\n", *compareTo)
				for _, v := range violations {
					fmt.Fprintf(os.Stderr, "  - %s\n", v)
				}
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "fbench: regression gate vs %s passed (%d workloads, noise band %d%%)\n",
				*compareTo, len(baseline.Rows), int(*noise*100))
		}
		return
	}

	started := time.Now()
	report := bench.NewReport(cfg.Scale, cfg.Workers, started)

	var run func(string) error
	run = func(name string) error {
		t0 := time.Now()
		e := bench.Experiment{Name: name}
		switch name {
		case "fig11", "table1":
			rows, err := bench.Figure11(cfg)
			if err != nil {
				return err
			}
			if name == "fig11" {
				bench.WriteFigure(os.Stdout, "Figure 11: FastSim-role simulator vs conventional baseline", rows)
			} else {
				bench.WriteTable1(os.Stdout, rows)
			}
			e.Rows = rows
		case "table2":
			rows, err := bench.Table2(cfg)
			if err != nil {
				return err
			}
			bench.WriteTable2(os.Stdout, rows)
			e.Rows = rows
		case "fig12":
			rows, err := bench.Figure12(cfg)
			if err != nil {
				return err
			}
			bench.WriteFigure(os.Stdout, "Figure 12: Facile-compiled OOO simulator vs conventional baseline", rows)
			e.Rows = rows
		case "loc":
			bench.WriteLoC(os.Stdout)
			e.LoC = bench.LoCReport()
		case "cachecap":
			caps := []uint64{0, 16 << 20, 4 << 20, 1 << 20, 256 << 10, 64 << 10}
			pts, err := bench.CacheCapSweep(*capName, cfg.Scale, caps)
			if err != nil {
				return err
			}
			bench.WriteCapSweep(os.Stdout, *capName, pts)
			e.Sweep = pts
		case "all":
			for _, sub := range []string{"fig11", "table1", "table2", "fig12", "cachecap", "loc"} {
				if err := run(sub); err != nil {
					return err
				}
				fmt.Println()
			}
			return nil
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		e.WallSec = time.Since(t0).Seconds()
		report.Add(e)
		return nil
	}
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "fbench:", err)
		os.Exit(1)
	}
	if *jsonPath != "" {
		if err := report.WriteFile(*jsonPath, time.Since(started)); err != nil {
			fmt.Fprintln(os.Stderr, "fbench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "fbench: wrote %s\n", *jsonPath)
	}
}
