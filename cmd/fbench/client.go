package main

import (
	"context"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"facile/internal/cli"
	"facile/internal/serve"
	"facile/internal/workloads"
)

// runClient is the fsimd client mode: instead of simulating locally, it
// submits one job per benchmark to a running fsimd, waits for them all,
// and reports each job's result plus the serving-economics columns (warm
// start, fast-step share). Repeated invocations against the same server
// demonstrate warm-cache sharing: the second run of the same suite starts
// from the caches the first run parked.
func runClient(server, engine string, names []string, scale int, memoize bool) error {
	if len(names) == 0 {
		names = workloads.Names()
	}
	c := serve.NewClient(server)
	ctx, stop := cli.ShutdownContext(context.Background())
	defer stop()

	ids := make([]string, 0, len(names))
	for _, name := range names {
		st, err := c.Submit(ctx, serve.JobRequest{
			Bench:   name,
			Scale:   scale,
			Engine:  engine,
			Memoize: memoize,
		})
		if err != nil {
			return fmt.Errorf("submit %s: %w", name, err)
		}
		ids = append(ids, st.ID)
	}
	fmt.Fprintf(os.Stderr, "fbench: submitted %d job(s) to %s\n", len(ids), server)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "JOB\tBENCH\tSTATE\tINSTS\tWARM\tFAST%\tERROR")
	failed := 0
	for i, id := range ids {
		st, err := c.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("wait %s: %w", id, err)
		}
		var insts uint64
		if st.Result != nil {
			insts = st.Result.Insts
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%v\t%.1f\t%s\n",
			st.ID, names[i], st.State, insts, st.WarmStart, st.FastSharePc, st.Error)
		if st.State != serve.StateDone {
			failed++
		}
	}
	tw.Flush()
	if failed > 0 {
		return fmt.Errorf("%d job(s) did not complete", failed)
	}
	return nil
}
