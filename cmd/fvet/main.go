// Command fvet runs the Facile static-analysis suite over .fac sources
// and reports diagnostics with stable codes and real file:line:col spans.
//
// Usage:
//
//	fvet [-json|-sarif] [-explain] [-enable codes] [-disable codes]
//	     [-baseline file [-write-baseline]] file.fac [more.fac ...]
//	fvet -list
//
// Files are partitioned into compilation units automatically: every file
// declaring `fun main` is analyzed together with the main-less library
// files, so `fvet isa.fac stepA.fac stepB.fac` checks isa+stepA and
// isa+stepB in one invocation.
//
// Exit status: 0 clean, 1 error-severity findings (or, with -baseline,
// any finding not in the baseline), 2 usage or I/O failure.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"facile/internal/cli"
	"facile/internal/lang/vet"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifOut := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	explain := flag.Bool("explain", false, "include binding-time provenance reports (FV0101)")
	enable := flag.String("enable", "", "comma-separated codes/analyzers to enable (default all; prefixes like FV01 work)")
	disable := flag.String("disable", "", "comma-separated codes/analyzers to disable (wins over -enable)")
	minSev := flag.String("severity", "info", "minimum severity to report: info, warning, or error")
	baselinePath := flag.String("baseline", "", "compare findings against this baseline file; new findings fail")
	writeBaseline := flag.Bool("write-baseline", false, "write the current findings to -baseline and exit 0")
	sarifPath := flag.String("sarif-out", "", "also write a SARIF report to this file")
	list := flag.Bool("list", false, "list analyzers and their codes/severities, then exit")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fvet")
		return
	}
	if *list {
		listAnalyzers(os.Stdout)
		return
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: fvet [-json|-sarif] [-explain] [-enable codes] [-disable codes] file.fac ...")
		os.Exit(2)
	}

	opt := vet.Options{Explain: *explain}
	if *enable != "" {
		opt.Enable = splitList(*enable)
	}
	if *disable != "" {
		opt.Disable = splitList(*disable)
	}
	switch *minSev {
	case "info":
	case "warning":
		opt.MinSeverity = vet.SevWarning
	case "error":
		opt.MinSeverity = vet.SevError
	default:
		fmt.Fprintf(os.Stderr, "fvet: unknown severity %q\n", *minSev)
		os.Exit(2)
	}

	res, err := vet.RunFiles(flag.Args(), opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvet:", err)
		os.Exit(2)
	}

	if *sarifPath != "" {
		if err := writeFile(*sarifPath, func(f *os.File) error { return vet.WriteSARIF(f, res) }); err != nil {
			fmt.Fprintln(os.Stderr, "fvet:", err)
			os.Exit(2)
		}
	}

	switch {
	case *jsonOut:
		err = vet.WriteJSON(os.Stdout, res)
	case *sarifOut:
		err = vet.WriteSARIF(os.Stdout, res)
	default:
		err = vet.WriteText(os.Stdout, res)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvet:", err)
		os.Exit(2)
	}

	if *baselinePath != "" {
		os.Exit(gateBaseline(res, *baselinePath, *writeBaseline))
	}
	if !*jsonOut && !*sarifOut {
		fmt.Fprintf(os.Stderr, "fvet: %d error(s), %d warning(s), %d info(s) across %d unit(s)\n",
			res.Count(vet.SevError), res.Count(vet.SevWarning), res.Count(vet.SevInfo), len(res.Units))
	}
	if res.HasErrors() {
		os.Exit(1)
	}
}

// listAnalyzers prints the analyzer registry: every analyzer with its
// codes, severities, and one-line docs, plus the pipeline codes the
// driver itself emits.
func listAnalyzers(w io.Writer) {
	fmt.Fprintf(w, "pipeline (driver diagnostics)\n")
	for _, c := range vet.PipelineCodes() {
		fmt.Fprintf(w, "  %s  %-7s  %s\n", c.Code, c.Severity, c.Doc)
	}
	for _, a := range vet.All() {
		fmt.Fprintf(w, "%s: %s\n", a.Name, a.Doc)
		for _, c := range a.Codes {
			fmt.Fprintf(w, "  %s  %-7s  %s\n", c.Code, c.Severity, c.Doc)
		}
	}
}

// gateBaseline compares against (or rewrites) the baseline file and
// returns the exit status.
func gateBaseline(res *vet.Result, path string, write bool) int {
	if write {
		if err := writeFile(path, func(f *os.File) error { return vet.NewBaseline(res).WriteBaseline(f) }); err != nil {
			fmt.Fprintln(os.Stderr, "fvet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "fvet: wrote baseline %s (%d finding(s))\n", path, len(vet.NewBaseline(res).Findings))
		return 0
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvet:", err)
		return 2
	}
	defer f.Close()
	base, err := vet.LoadBaseline(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fvet: %s: %v\n", path, err)
		return 2
	}
	fresh, fixed := base.Compare(res)
	if len(fixed) > 0 {
		fmt.Fprintf(os.Stderr, "fvet: %d baseline finding(s) no longer produced; shrink %s with -write-baseline\n",
			len(fixed), path)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "fvet: %d finding(s) not in baseline %s:\n", len(fresh), path)
		for _, d := range fresh {
			fmt.Fprintf(os.Stderr, "  %s: %s %s: %s\n", d.Pos, d.Severity, d.Code, d.Message)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "fvet: clean against baseline %s\n", path)
	return 0
}

func splitList(s string) []string {
	var out []string
	for _, t := range strings.Split(s, ",") {
		if t = strings.TrimSpace(t); t != "" {
			out = append(out, t)
		}
	}
	return out
}

func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
