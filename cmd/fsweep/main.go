// Command fsweep runs a parametric design-space sweep from a JSON spec:
// one workload, one engine, a grid of microarchitecture axes, and a
// comparative report (per-point cycles/IPC/miss rates, best/worst/knee,
// per-axis miss curves).
//
// Usage:
//
//	fsweep -spec sweep.json [-workers N] [-out report.json] [-csv report.csv]
//	fsweep -spec sweep.json -server http://HOST:PORT
//
// By default the sweep runs in-process: points sharing a warm-cache
// lineage run back to back so every point after the first warm-starts
// off its predecessor's action cache. With -server the spec is posted to
// a running fsimd (POST /v1/sweeps) and each point goes through the
// daemon's job queue instead, sharing the daemon's lineage table and
// persistent cache store.
//
// The aligned-text report always goes to stdout; -out and -csv
// additionally write the JSON and CSV renderings.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"facile/internal/cli"
	"facile/internal/serve"
	"facile/internal/sweep"
)

func main() {
	specPath := flag.String("spec", "", "sweep spec (JSON, required)")
	server := flag.String("server", "", "fsimd base URL; run the sweep there instead of in-process")
	workers := flag.Int("workers", 1, "cache lineages run concurrently (1 = maximum warm reuse)")
	outPath := flag.String("out", "", "write the JSON report to this path")
	csvPath := flag.String("csv", "", "write the CSV report to this path")
	quiet := flag.Bool("q", false, "suppress per-point progress on stderr")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *version {
		cli.PrintVersion("fsweep")
		return
	}
	if *specPath == "" {
		fmt.Fprintln(os.Stderr, "fsweep: -spec is required")
		flag.Usage()
		os.Exit(2)
	}

	raw, err := os.ReadFile(*specPath)
	if err != nil {
		fatal(err)
	}
	var spec sweep.Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fatal(fmt.Errorf("parse %s: %w", *specPath, err))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var rep *sweep.Report
	if *server != "" {
		rep, err = runRemote(ctx, *server, spec, *workers, *quiet)
	} else {
		rep, err = runLocal(ctx, spec, *workers, *quiet)
	}
	if rep != nil {
		if werr := rep.WriteText(os.Stdout); werr != nil {
			fatal(werr)
		}
		if *outPath != "" {
			js, jerr := rep.JSON()
			if jerr == nil {
				jerr = os.WriteFile(*outPath, js, 0o644)
			}
			if jerr != nil {
				fatal(jerr)
			}
			fmt.Fprintf(os.Stderr, "fsweep: wrote %s\n", *outPath)
		}
		if *csvPath != "" {
			f, ferr := os.Create(*csvPath)
			if ferr != nil {
				fatal(ferr)
			}
			if ferr = rep.WriteCSV(f); ferr == nil {
				ferr = f.Close()
			} else {
				f.Close()
			}
			if ferr != nil {
				fatal(ferr)
			}
			fmt.Fprintf(os.Stderr, "fsweep: wrote %s\n", *csvPath)
		}
	}
	if err != nil {
		fatal(err)
	}
}

func runLocal(ctx context.Context, spec sweep.Spec, workers int, quiet bool) (*sweep.Report, error) {
	opt := sweep.Options{Workers: workers}
	if !quiet {
		opt.OnPoint = progressLine
	}
	return sweep.Run(ctx, spec, opt)
}

func runRemote(ctx context.Context, base string, spec sweep.Spec, workers int, quiet bool) (*sweep.Report, error) {
	c := serve.NewClient(base)
	st, err := c.SubmitSweep(ctx, serve.SweepRequest{Spec: spec, Workers: workers})
	if err != nil {
		return nil, err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "fsweep: %s submitted as %s (%d points)\n",
			base, st.ID, st.TotalPoints)
	}
	// On interrupt, tell the daemon to stop the sweep, then collect the
	// partial report.
	waitCtx := context.Background()
	go func() {
		<-ctx.Done()
		cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = c.CancelSweep(cctx, st.ID)
	}()
	seen := 0
	for {
		cur, err := c.SweepStatus(waitCtx, st.ID)
		if err != nil {
			return nil, err
		}
		if !quiet && cur.SettledPoints != seen {
			seen = cur.SettledPoints
			fmt.Fprintf(os.Stderr, "fsweep: %d/%d points settled (%d warm)\n",
				seen, cur.TotalPoints, cur.WarmStarts)
		}
		switch cur.State {
		case serve.SweepDone:
			return cur.Report, nil
		case serve.SweepCanceled:
			return cur.Report, context.Canceled
		case serve.SweepFailed:
			return cur.Report, fmt.Errorf("sweep %s failed: %s", cur.ID, cur.Error)
		}
		select {
		case <-waitCtx.Done():
			return nil, waitCtx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

func progressLine(p sweep.PointResult) {
	coords := ""
	for i, pv := range p.Params {
		if i > 0 {
			coords += " "
		}
		coords += fmt.Sprintf("%s=%d", pv.Name, pv.Value)
	}
	switch p.Status {
	case sweep.PointOK:
		warm := "cold"
		if p.WarmStart {
			warm = "warm:" + p.WarmSource
		}
		fmt.Fprintf(os.Stderr, "fsweep: point %d [%s] %d cycles ipc %.3f (%s)\n",
			p.Index, coords, p.Cycles, p.IPC, warm)
	default:
		fmt.Fprintf(os.Stderr, "fsweep: point %d [%s] %s %s\n", p.Index, coords, p.Status, p.Error)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsweep:", err)
	os.Exit(1)
}
