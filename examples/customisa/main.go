// Custom ISA: describe a brand-new 16-bit accumulator machine in Facile —
// token, fields, patterns, semantics, and a one-instruction-per-step
// functional simulator — and run a hand-assembled program on it.
//
// This is the use case Facile's encoding sublanguage (after the New Jersey
// Machine-Code Toolkit) is designed for: retargeting the simulator stack
// to a different instruction set is a description change, not a simulator
// rewrite. The step function still memoizes: the countdown loop below
// replays from the specialized action cache after its first iteration.
//
// Run with: go run ./examples/customisa
package main

import (
	"fmt"
	"log"

	"facile/internal/core"
	"facile/internal/rt"
)

// ACC-16: 16-bit words; op[15:12], reg[11:8], imm8[7:0].
const isaSrc = `
token word[16] fields op 12:15, reg 8:11, imm8 0:7;

pat ldi = op == 0;   // acc = imm8
pat add = op == 1;   // acc += R[reg]
pat sub = op == 2;   // acc -= R[reg]
pat sta = op == 3;   // R[reg] = acc
pat lda = op == 4;   // acc = R[reg]
pat jnz = op == 5;   // if (acc != 0) pc = imm8
pat out = op == 6;   // emit acc
pat hlt = op == 7;

val ACC = 0;
val R = array(16){0};
val PC : stream;
val nPC : stream;

extern emit(1);
extern halt_sim(0);

sem ldi { ACC = imm8; }
sem add { ACC = ACC + R[reg]; }
sem sub { ACC = ACC - R[reg]; }
sem sta { R[reg] = ACC; }
sem lda { ACC = R[reg]; }
sem jnz { if (ACC != 0) { nPC = imm8; } }
sem out { emit(ACC); }
sem hlt { halt_sim(); }

fun main(pc) {
    PC = pc;
    nPC = pc + 1;        // word-addressed program counter
    PC?exec();
    set_args(nPC);
}
`

// rom is the TextSource: Facile's ?fetch/?exec read the target program
// from it. ACC-16 is word-addressed.
type rom []uint16

func (r rom) FetchWord(addr uint64) uint32 {
	if addr >= uint64(len(r)) {
		return 0x7000 // off the end: halt
	}
	return uint32(r[addr])
}

func ins(op, reg, imm int) uint16 { return uint16(op<<12 | reg<<8 | imm) }

func main() {
	sim, err := core.CompileSource(isaSrc, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// r1 = 5 (counter), r2 = 0 (total), r3 = 1 (constant one);
	// loop: total += counter; emit total; if (--counter) goto loop.
	program := rom{
		ins(0, 0, 5), //  0: ldi 5
		ins(3, 1, 0), //  1: sta r1
		ins(0, 0, 0), //  2: ldi 0
		ins(3, 2, 0), //  3: sta r2
		ins(0, 0, 1), //  4: ldi 1
		ins(3, 3, 0), //  5: sta r3
		ins(4, 2, 0), //  6: lda r2       ; loop:
		ins(1, 1, 0), //  7: add r1
		ins(3, 2, 0), //  8: sta r2
		ins(6, 0, 0), //  9: out          ; emit running total
		ins(4, 1, 0), // 10: lda r1
		ins(2, 3, 0), // 11: sub r3
		ins(3, 1, 0), // 12: sta r1
		ins(5, 0, 6), // 13: jnz loop
		ins(7, 0, 0), // 14: hlt
	}

	m := sim.NewMachine(program, rt.Options{Memoize: true})
	halted := false
	m.RegisterExtern("emit", func(a []int64) int64 {
		fmt.Printf("ACC-16 emitted: %d\n", a[0])
		return 0
	})
	m.RegisterExtern("halt_sim", func([]int64) int64 {
		halted = true
		return 0
	})
	m.SetStop(func(*rt.Machine) bool { return halted })
	if err := m.SetIntArgs(0); err != nil {
		log.Fatal(err)
	}
	if err := m.Run(10_000); err != nil {
		log.Fatal(err)
	}
	regs, _ := m.Array("R")
	st := m.Stats()
	fmt.Printf("halted: total R2=%d (want 5+4+3+2+1=15) after %d steps (%d replayed, %d recoveries)\n",
		regs[2], st.SlowSteps+st.Replays, st.Replays, st.Misses)
}
