// Quickstart: compile a five-line Facile step function and watch
// fast-forwarding memoize it.
//
// The program is the paper's execution model in miniature: main is the
// simulator step function, its argument is the run-time static key, the
// global counter and the external call are dynamic. After the first lap
// over the ten distinct keys, every step replays from the specialized
// action cache.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"facile/internal/core"
	"facile/internal/rt"
)

const src = `
val counter = 0;
extern emit(1);

fun main(x) {
    counter = counter + 1;   // dynamic: globals depend on history
    val y = x + 1;           // run-time static: derived from the key
    if (y > 9) { y = 0; }
    emit(y);                 // dynamic external call
    set_args(y);             // rt-static key for the next step
}
`

func main() {
	sim, err := core.CompileSource(src, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d blocks, %d vregs\n", len(sim.Prog.Blocks), sim.Prog.NumVReg)

	for _, memo := range []bool{false, true} {
		m := sim.NewMachine(core.NullText(), rt.Options{Memoize: memo})
		var emitted []int64
		if err := m.RegisterExtern("emit", func(a []int64) int64 {
			emitted = append(emitted, a[0])
			return 0
		}); err != nil {
			log.Fatal(err)
		}
		if err := m.SetIntArgs(0); err != nil {
			log.Fatal(err)
		}
		if err := m.Run(100); err != nil {
			log.Fatal(err)
		}
		counter, _ := m.Global("counter")
		st := m.Stats()
		fmt.Printf("memoize=%-5v counter=%d first-emits=%v\n", memo, counter, emitted[:12])
		fmt.Printf("             %d slow steps, %d replayed steps, %d cache entries\n",
			st.SlowSteps, st.Replays, st.CacheEntries)
	}
	fmt.Println("note: with memoization only the 10 distinct keys run slow; the rest replay.")
}
