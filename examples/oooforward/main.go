// OOO fast-forwarding: the paper's headline result on one benchmark.
//
// Runs the Facile-described out-of-order simulator over a bundled
// SPEC95-substitute workload three ways — conventional Go baseline
// ("SimpleScalar"), Facile without memoization, Facile with
// fast-forwarding — and reports the speedups and action-cache statistics.
// The two Facile runs must produce identical cycle counts (the paper's
// central validation), and both must match the golden functional model
// architecturally.
//
// Run with: go run ./examples/oooforward [benchmark] [scale]
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"facile/internal/arch/funcsim"
	"facile/internal/arch/ooo"
	"facile/internal/arch/uarch"
	"facile/internal/facsim"
	"facile/internal/workloads"
)

func main() {
	name, scale := "129.compress", 2
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		scale, _ = strconv.Atoi(os.Args[2])
	}
	w, err := workloads.Get(name, scale)
	if err != nil {
		log.Fatal(err)
	}

	_, golden, err := funcsim.Run(w.Prog, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @ scale %d: %d instructions, checksum %q\n",
		name, scale, golden.Insts, bytes.TrimSpace(golden.Output))

	t0 := time.Now()
	base := ooo.Run(uarch.Default(), w.Prog, 0)
	dBase := time.Since(t0)
	fmt.Printf("baseline (conventional OOO): %8d cycles  %8v  %6.2f Msim-inst/s\n",
		base.Cycles, dBase.Round(time.Millisecond), float64(base.Insts)/dBase.Seconds()/1e6)

	var cycles [2]uint64
	var rate [2]float64
	for i, memo := range []bool{false, true} {
		in, err := facsim.NewOOO(w.Prog, facsim.Options{Memoize: memo, CacheCapBytes: 256 << 20})
		if err != nil {
			log.Fatal(err)
		}
		t0 = time.Now()
		res, err := in.Run(0)
		if err != nil {
			log.Fatal(err)
		}
		d := time.Since(t0)
		cycles[i] = res.Cycles
		rate[i] = float64(res.Insts) / d.Seconds() / 1e6
		tag := "Facile OOO, no memoization "
		if memo {
			tag = "Facile OOO, fast-forwarding"
		}
		fmt.Printf("%s: %8d cycles  %8v  %6.2f Msim-inst/s\n",
			tag, res.Cycles, d.Round(time.Millisecond), rate[i])
		if !bytes.Equal(res.Output, golden.Output) {
			log.Fatalf("output mismatch vs golden model")
		}
		if memo {
			st := res.Stats
			fmt.Printf("  action cache: %d entries, %.1f MB memoized, %d replayed steps, %d recoveries\n",
				st.CacheEntries, float64(st.TotalMemoBytes)/(1<<20), st.Replays, st.Misses)
		}
	}
	if cycles[0] != cycles[1] {
		log.Fatalf("VALIDATION FAILED: memoized cycles %d != non-memoized %d", cycles[1], cycles[0])
	}
	fmt.Printf("cycle counts identical (%d) — fast-forwarding computed exactly the same simulation.\n", cycles[0])
	fmt.Printf("speedup from fast-forwarding: %.1fx\n", rate[1]/rate[0])
}
