// Cache study: use the fast-forwarding simulator as an architecture
// research tool — the reason the paper wants detailed simulators to be
// fast. A thin wrapper over the internal/sweep design-space subsystem:
// the L1D axis is declared once, and the sweep runner chains each
// configuration's warm action cache into the next, so only the first
// point simulates cold. The same spec runs unchanged under cmd/fsweep
// or POST /v1/sweeps on a daemon.
//
// Run with: go run ./examples/cachestudy [benchmark] [scale]
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"

	"facile/internal/runcfg"
	"facile/internal/sweep"
)

func main() {
	name, scale := "129.compress", 4
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		scale, _ = strconv.Atoi(os.Args[2])
	}

	spec := sweep.Spec{
		Name:   "cachestudy",
		Bench:  name,
		Scale:  scale,
		Engine: runcfg.EngineFastsim,
		Axes:   []sweep.Axis{{Param: "l1d.size_kb", Min: 4, Max: 64, Mul: 2}},
	}

	fmt.Printf("L1D sweep on %s @ scale %d (memoizing simulator, warm-chained)\n\n", name, scale)
	rep, err := sweep.Run(context.Background(), spec, sweep.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsmaller caches -> more misses -> more cycles; every point after the")
	fmt.Println("first warm-starts from its predecessor's action cache, and the warm")
	fmt.Println("results are bit-identical to cold runs (replay verifies every action).")
}
