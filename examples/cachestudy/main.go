// Cache study: use the fast-forwarding simulator as an architecture
// research tool — the reason the paper wants detailed simulators to be
// fast. Sweeps the L1 data cache size for one workload and reports cycle
// counts, using the memoizing simulator so each configuration simulates
// quickly.
//
// Run with: go run ./examples/cachestudy [benchmark] [scale]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"facile/internal/arch/fastsim"
	"facile/internal/arch/uarch"
	"facile/internal/workloads"
)

func main() {
	name, scale := "129.compress", 4
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	if len(os.Args) > 2 {
		scale, _ = strconv.Atoi(os.Args[2])
	}
	w, err := workloads.Get(name, scale)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L1D sweep on %s @ scale %d (memoizing simulator)\n", name, scale)
	fmt.Printf("%8s %12s %10s %10s %10s\n", "L1D", "cycles", "IPC", "L1D miss", "host time")
	for _, kb := range []int{4, 8, 16, 32, 64} {
		cfg := uarch.Default()
		cfg.Mem.L1D.SizeBytes = kb << 10
		s := fastsim.New(cfg, w.Prog, fastsim.Options{Memoize: true})
		t0 := time.Now()
		res := s.Run(0)
		d := time.Since(t0)
		fmt.Printf("%6dKB %12d %10.3f %10d %10v\n",
			kb, res.Cycles, res.IPC(), res.L1DMisses, d.Round(time.Millisecond))
	}
	fmt.Println("\nsmaller caches -> more misses -> more cycles; each point re-simulates")
	fmt.Println("the full program, made cheap by fast-forwarding.")
}
