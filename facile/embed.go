// Package facile bundles the Facile-language simulator descriptions
// shipped with this repository: the SVR32 ISA description and the
// functional, in-order, and out-of-order simulator step functions built on
// it. The Go driver packages compile these sources with internal/core and
// attach the host externs (memory, system calls, cache and branch
// predictor simulators).
package facile

import _ "embed"

//go:embed svr32.fac
var isaSrc string

//go:embed func.fac
var funcSrc string

//go:embed inorder.fac
var inorderSrc string

//go:embed ooo.fac
var oooSrc string

// ISA returns the SVR32 encoding and semantics description.
func ISA() string { return isaSrc }

// FuncSim returns the complete functional simulator source.
func FuncSim() string { return isaSrc + funcSrc }

// InOrderSim returns the complete in-order pipeline simulator source.
func InOrderSim() string { return isaSrc + inorderSrc }

// OOOSim returns the complete out-of-order simulator source.
func OOOSim() string { return isaSrc + oooSrc }

// Sources lists every bundled description with its name, for line-count
// reporting (the paper's §6.2 code-size comparison).
func Sources() map[string]string {
	return map[string]string{
		"svr32.fac":   isaSrc,
		"func.fac":    funcSrc,
		"inorder.fac": inorderSrc,
		"ooo.fac":     oooSrc,
	}
}
