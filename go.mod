module facile

go 1.22
