package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetPackageCoherent is the CI-facing assertion: the real analyzer
// suite must keep its finding-code space coherent.
func TestVetPackageCoherent(t *testing.T) {
	dir := filepath.Join("..", "..", "internal", "lang", "vet")
	problems, err := Check(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// writeFixture materializes a one-file package and returns its dir.
func writeFixture(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func checkProblems(t *testing.T, src string, wants ...string) {
	t.Helper()
	problems, err := Check(writeFixture(t, src))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range wants {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no problem mentioning %q; got %v", want, problems)
		}
	}
	if len(wants) == 0 && len(problems) > 0 {
		t.Errorf("unexpected problems: %v", problems)
	}
}

const fixtureHeader = `package vet

type Severity int

const SevWarning Severity = 1

type CodeDoc struct {
	Code     string
	Severity Severity
	Doc      string
}

type Diagnostic struct {
	Code string
}

type Pass struct{}

func (p *Pass) Reportf(analyzer, code string, sev Severity, args ...any) {}
func (p *Pass) Report(d Diagnostic)                                      {}
`

func TestDetectsDuplicateCatalogCode(t *testing.T) {
	checkProblems(t, fixtureHeader+`
var a = []CodeDoc{{"FV9901", SevWarning, "x"}, {"FV9901", SevWarning, "y"}}

func f(p *Pass) { p.Reportf("a", "FV9901", SevWarning) }
`, "declared twice")
}

func TestDetectsMalformedCode(t *testing.T) {
	checkProblems(t, fixtureHeader+`
var a = []CodeDoc{{"FV99", SevWarning, "x"}}

func f(p *Pass) { p.Reportf("a", "FV123", SevWarning) }
`, "catalog code \"FV99\" is malformed", "reported code \"FV123\" is malformed")
}

func TestDetectsUncataloguedReport(t *testing.T) {
	checkProblems(t, fixtureHeader+`
func f(p *Pass) {
	p.Reportf("a", "FV9902", SevWarning)
	p.Report(Diagnostic{Code: "FV9903"})
}
`, "FV9902 has no catalog entry", "FV9903 has no catalog entry")
}

func TestDetectsUnreportedCatalogEntry(t *testing.T) {
	checkProblems(t, fixtureHeader+`
var a = []CodeDoc{{"FV9904", SevWarning, "x"}}
`, "FV9904 is never reported")
}

func TestDetectsHelperRoutedMention(t *testing.T) {
	// A code passed through a helper variable is still caught by the
	// mention scan when it lacks a catalog entry.
	checkProblems(t, fixtureHeader+`
func f(p *Pass) {
	code := "FV9905"
	p.Reportf("a", code, SevWarning)
}
`, "FV9905 mentioned but never catalogued")
}

func TestCleanFixture(t *testing.T) {
	checkProblems(t, fixtureHeader+`
var a = []CodeDoc{{"FV9906", SevWarning, "x"}}

func f(p *Pass) { p.Reportf("a", "FV9906", SevWarning) }
`)
}
