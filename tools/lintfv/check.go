package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

var codeRE = regexp.MustCompile(`^FV\d{4}$`)

// catalogEntry is one CodeDoc literal: a declared finding code.
type catalogEntry struct {
	code string
	pos  token.Position
}

// reportSite is one place a finding code is passed to the report API.
type reportSite struct {
	code    string
	literal bool // code argument was a string literal
	pos     token.Position
}

// Check parses the non-test Go files of dir and returns the list of
// finding-code problems, empty when the code space is coherent.
func Check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}

	var catalog []catalogEntry
	var sites []reportSite
	mentions := map[string][]token.Position{} // every FVnnnn literal, by position
	catalogPos := map[string]bool{}           // "file:line:col" of catalog literals

	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BasicLit:
				if s, ok := strLit(n); ok && codeRE.MatchString(s) {
					mentions[s] = append(mentions[s], fset.Position(n.Pos()))
				}
			case *ast.CompositeLit:
				if isCodeDocSlice(n.Type) {
					for _, el := range n.Elts {
						code, pos, ok := codeDocEntry(el)
						if !ok {
							continue
						}
						p := fset.Position(pos)
						catalog = append(catalog, catalogEntry{code: code, pos: p})
						catalogPos[p.String()] = true
					}
				}
				if isIdent(n.Type, "Diagnostic") {
					if code, pos, lit, ok := diagCode(n); ok {
						sites = append(sites, reportSite{code: code, literal: lit, pos: fset.Position(pos)})
					}
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
					(sel.Sel.Name == "Reportf" || sel.Sel.Name == "ReportFix") && len(n.Args) >= 2 {
					if s, ok := strLit(n.Args[1]); ok {
						sites = append(sites, reportSite{code: s, literal: true, pos: fset.Position(n.Args[1].Pos())})
					} else {
						sites = append(sites, reportSite{literal: false, pos: fset.Position(n.Args[1].Pos())})
					}
				}
			}
			return true
		})
	}

	var problems []string
	bad := func(pos token.Position, format string, args ...any) {
		problems = append(problems, pos.String()+": "+fmt.Sprintf(format, args...))
	}

	// Catalog: well-formed and declared exactly once across all catalogs.
	declared := map[string]token.Position{}
	for _, e := range catalog {
		if !codeRE.MatchString(e.code) {
			bad(e.pos, "catalog code %q is malformed (want FV + 4 digits)", e.code)
			continue
		}
		if prev, dup := declared[e.code]; dup {
			bad(e.pos, "catalog code %s declared twice (also at %s)", e.code, prev)
			continue
		}
		declared[e.code] = e.pos
	}

	// Report sites: literal codes must be well-formed and catalogued.
	// Sites that pass a variable (e.g. a dedupe helper) are covered by
	// the mention scan below instead.
	for _, s := range sites {
		if !s.literal {
			continue
		}
		if !codeRE.MatchString(s.code) {
			bad(s.pos, "reported code %q is malformed (want FV + 4 digits)", s.code)
			continue
		}
		if _, ok := declared[s.code]; !ok {
			bad(s.pos, "reported code %s has no catalog entry (add a CodeDoc)", s.code)
		}
	}

	// Every FVnnnn literal anywhere in the package must be catalogued —
	// this catches codes routed through helpers as variables.
	for code, poss := range mentions {
		if _, ok := declared[code]; ok {
			continue
		}
		for _, p := range poss {
			if !catalogPos[p.String()] {
				bad(p, "code %s mentioned but never catalogued", code)
			}
		}
	}

	// Every catalogued code must be mentioned outside its own catalog
	// entry, i.e. actually reachable from a report path.
	for code, dp := range declared {
		used := false
		for _, p := range mentions[code] {
			if !catalogPos[p.String()] {
				used = true
				break
			}
		}
		if !used {
			bad(dp, "catalog code %s is never reported", code)
		}
	}

	sort.Strings(problems)
	return problems, nil
}

// strLit unwraps a string literal expression.
func strLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

func isIdent(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isCodeDocSlice(e ast.Expr) bool {
	at, ok := e.(*ast.ArrayType)
	return ok && at.Len == nil && isIdent(at.Elt, "CodeDoc")
}

// codeDocEntry extracts the code from one CodeDoc element, written
// either positionally ({"FV0101", Sev, "doc"}) or with field keys.
func codeDocEntry(el ast.Expr) (string, token.Pos, bool) {
	cl, ok := el.(*ast.CompositeLit)
	if !ok || len(cl.Elts) == 0 {
		return "", 0, false
	}
	for _, f := range cl.Elts {
		if kv, ok := f.(*ast.KeyValueExpr); ok {
			if isIdent(kv.Key, "Code") {
				if s, ok := strLit(kv.Value); ok {
					return s, kv.Value.Pos(), true
				}
			}
			continue
		}
		// Positional: the first element is the code.
		if s, ok := strLit(f); ok {
			return s, f.Pos(), true
		}
		return "", 0, false
	}
	return "", 0, false
}

// diagCode extracts the Code field of a Diagnostic composite literal.
// Literals that set Code from a variable (the Reportf/ReportFix bodies)
// report literal=false and are skipped by the caller.
func diagCode(cl *ast.CompositeLit) (string, token.Pos, bool, bool) {
	for _, f := range cl.Elts {
		kv, ok := f.(*ast.KeyValueExpr)
		if !ok || !isIdent(kv.Key, "Code") {
			continue
		}
		if s, ok := strLit(kv.Value); ok {
			return s, kv.Value.Pos(), true, true
		}
		return "", kv.Value.Pos(), false, true
	}
	return "", 0, false, false
}
