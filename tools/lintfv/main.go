// Command lintfv is the repository's custom static check over its own
// static-analysis suite: it parses internal/lang/vet and verifies that
// the FV finding-code space is coherent.
//
//	go run ./tools/lintfv [dir]
//
// Checks:
//
//   - every code literal in a catalog (an Analyzer's Codes list, or the
//     PipelineCodes function) is well-formed (`FV` + 4 digits) and
//     declared exactly once across all catalogs;
//
//   - every code literal at a report site (pass.Reportf, pass.ReportFix,
//     or a Diagnostic composite literal) is well-formed and has a
//     matching catalog entry — no analyzer can invent an undocumented
//     code;
//
//   - every catalog entry is actually reported somewhere — no dead
//     documentation.
//
// The standard-library go/ast is deliberate: the module has no
// dependencies, so the go/analysis vettool protocol is unavailable; CI
// runs this as a plain command and tools/lintfv/main_test.go wraps the
// same check as a Go test.
//
// Exit status: 0 clean, 1 problems found, 2 usage or parse failure.
package main

import (
	"fmt"
	"os"
)

func main() {
	dir := "internal/lang/vet"
	if len(os.Args) > 2 {
		fmt.Fprintln(os.Stderr, "usage: lintfv [dir]")
		os.Exit(2)
	}
	if len(os.Args) == 2 {
		dir = os.Args[1]
	}
	problems, err := Check(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lintfv:", err)
		os.Exit(2)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "lintfv: %d problem(s) in %s\n", len(problems), dir)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "lintfv: %s: finding-code space coherent\n", dir)
}
